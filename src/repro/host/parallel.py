"""Sharded parallel partition execution for the kNN engine.

The paper hides host-side latency by pipelining (Section III-C); a
production host has a second lever the single-board timeline model
cannot express: board partitions are *independent* until the final
top-k merge, so a multi-core host can execute them concurrently —
each worker simulates (or functionally models) its own partitions and
streams ``(q_idx, codes, cycles)`` report batches back to the parent,
which decodes them through the exact same merge path as the sequential
engine.  Results are therefore bit-identical to sequential execution:
workers return per-partition report arrays plus per-partition
:class:`~repro.ap.runtime.RuntimeCounters` deltas, and the parent
consumes both in partition order, so counter aggregation is exact and
the (distance, index) tie-break is untouched.

Backends
--------

* ``backend="process"`` — a :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True multi-core for the cycle simulator.
  The parent's :class:`~repro.ap.compiler.BoardImageCache` is
  per-process, but process workers are still *cache-aware*: a task
  whose partition is already cached ships the compiled artifact out
  with the task (workers skip the rebuild), and a worker that had to
  build ships the artifact back with its result so the parent cache
  warms up — ``backend="process"`` and ``cache=`` compose.
* ``backend="thread"`` — a :class:`~concurrent.futures.
  ThreadPoolExecutor`.  The functional back-end spends its time inside
  NumPy kernels that release the GIL, so threads overlap almost as
  well as processes there while skipping query-batch pickling — and,
  because threads share the parent's memory, workers consult and fill
  the engine's board-image cache directly: ``parallel=`` and
  ``cache=`` finally compose.
* ``backend="pinned"`` — a :class:`~repro.host.ring.PinnedWorkerPool`:
  long-lived worker processes pinned to shared-memory task-descriptor
  rings.  Submission is a slot memcpy plus an event post instead of
  executor machinery (~0.5 ms/task observed on the process backend),
  so small/medium fan-outs keep true multi-core without paying
  dispatch.  Same cache-awareness as ``"process"`` (artifact shipping
  both ways), same transports.  Requires working shared memory; where
  it is unavailable the usual pool-failure fallback applies.
* ``backend="serial"`` — in-process loop regardless of ``n_workers``
  (debugging aid, and the silent fallback when a pool cannot be
  created).

The stock process backend additionally *chunks* task lists larger than
the worker count — one ``executor.submit`` carries a contiguous task
sublist per worker — so executor dispatch is paid per worker, not per
partition, even where the pinned backend is unavailable.

Every run records its dispatch cost: :class:`PartitionRunReport.
dispatch_overhead_s` is the mean per-task submit→start latency and
``queue_depth`` the peak submitted-not-finished count, surfaced by the
engines as ``KnnResult``/``WorkloadRunResult.dispatch_overhead_s``.

Transport
---------

``backend="process"`` historically pickled every task's dataset slice
(or compiled board artifact) through the executor pipe — per task, per
search.  ``transport`` now picks how process-worker payloads travel:

* ``"auto"`` (default) — shared memory (:mod:`repro.host.shm`) when it
  is available **and** the shippable payload reaches
  :data:`SHM_MIN_PAYLOAD_BYTES`; the pickle path otherwise, so small
  searches never pay segment setup.
* ``"shm"`` — force shared memory when available (still falls back to
  pickle on platforms without it or when a segment cannot be created).
* ``"pickle"`` — always the classic path.

Under shared memory the parent exports dataset slices and functional
board artifacts into :mod:`multiprocessing.shared_memory` segments
once per exporter lifetime (per *pool* lifetime for ``persistent=True``
configs — repeated searches re-ship nothing) and tasks carry only
``(segment, offset, shape, dtype)`` descriptors; workers reconstruct
zero-copy read-only views.  Thread/serial backends share the parent's
memory already and bypass the transport entirely.  Results are
bit-identical across every transport × backend combination.

Pool lifetime
-------------

By default a pool is created per :func:`run_partitions` call and torn
down afterwards — leak-proof for one-shot batches.  A long-lived
service issuing many small searches should set ``persistent=True``:
the :class:`ParallelConfig` then owns a lazily-spawned reusable pool,
usable as a context manager (or via explicit :meth:`~ParallelConfig.
close`), so repeated searches skip worker spawn cost entirely.  A
persistent pool whose config is dropped without :meth:`~ParallelConfig.
close` is reclaimed by a :func:`weakref.finalize` guard (which also
fires at interpreter exit), so forgotten configs cannot leak worker
threads/processes or hang shutdown.
"""

from __future__ import annotations

import pickle
import threading
import time
import weakref
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any

import numpy as np

from ..ap.compiler import export_artifact_shm, import_artifact_shm
from ..ap.device import APDeviceSpec, GEN1
from ..ap.runtime import RuntimeCounters
from ..perf import metrics as _metrics
from .ring import PinnedWorkerPool, RingBrokenError
from .shm import ShmArrayRef, ShmExporter, resolve_array, shm_available

__all__ = [
    "ParallelConfig",
    "PartitionTask",
    "PartitionResult",
    "PartitionRunReport",
    "run_partitions",
    "SHM_MIN_PAYLOAD_BYTES",
]

_POOL_ERRORS = (OSError, PermissionError, ImportError)

# transport="auto" switches the process backend to shared memory only
# when the shippable payload (dataset slices + exportable artifacts +
# per-task query batches) reaches this size; below it the pickle path's
# simplicity wins and small searches never pay segment setup.
SHM_MIN_PAYLOAD_BYTES = 1 << 20


def _shutdown_executor(pool: Any) -> None:
    """Finalizer target: must not reference the owning config (a bound
    method would keep it alive and the finalizer would never fire).
    ``pool`` is an :class:`~concurrent.futures.Executor` or a
    :class:`~repro.host.ring.PinnedWorkerPool` (same signature)."""
    pool.shutdown(wait=True, cancel_futures=True)


@dataclass(frozen=True)
class ParallelConfig:
    """How the engine fans partitions out across workers.

    ``n_workers <= 1`` means serial in-process execution; ``backend``
    picks ``"process"``, ``"thread"``, ``"pinned"`` (persistent worker
    processes on a shared-memory task ring — process-backend semantics
    with ~executor-free dispatch), or ``"serial"`` (forces serial
    regardless of ``n_workers``; useful for debugging).
    ``fallback_serial`` controls what happens when a pool cannot be
    created: degrade gracefully (default) or raise.  A pinned pool
    where shared memory is unavailable counts as pool-creation failure
    and follows the same rule.

    ``transport`` picks how process-worker payloads travel: ``"auto"``
    (shared memory for large payloads when available, pickle
    otherwise), ``"shm"`` (force shared memory when available), or
    ``"pickle"`` (always the classic path).  ``measure_ipc=True`` makes
    :func:`run_partitions` record the submitted task payload bytes in
    its report — benchmarking aid; it pays an extra pickle pass, so
    leave it off in production.

    ``persistent=True`` makes this config own a reusable worker pool:
    spawned lazily on the first :func:`run_partitions` call, reused by
    every later call, released by :meth:`close` (or by using the
    config as a context manager).  A shared-memory exporter created for
    the pool lives and dies with it, so stable payloads (an engine's
    partition slices, warm-cache artifacts) cross into shared memory
    once per pool lifetime.  A ``weakref.finalize`` guard shuts
    the pool down if the config is garbage-collected — or the
    interpreter exits — without ``close()``, so a dropped config never
    leaks workers or hangs shutdown (the exporter carries its own
    equivalent guard).  The pool and exporter handles never
    participate in equality/hashing, so configs compare by their
    settings alone.
    """

    n_workers: int = 1
    backend: str = "process"
    fallback_serial: bool = True
    persistent: bool = False
    transport: str = "auto"
    measure_ipc: bool = False
    _exporter: Any = field(default=None, init=False, repr=False, compare=False)
    _pool: Executor | None = field(
        default=None, init=False, repr=False, compare=False
    )
    _pool_finalizer: Any = field(
        default=None, init=False, repr=False, compare=False
    )
    # Guards the persistent pool's lazy spawn/teardown: a long-lived
    # service may issue concurrent searches through one config, and an
    # unlocked first-use race would leak a second executor.
    _pool_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.backend not in ("process", "thread", "pinned", "serial"):
            raise ValueError(f"unknown parallel backend {self.backend!r}")
        if self.transport not in ("auto", "shm", "pickle"):
            raise ValueError(f"unknown transport {self.transport!r}")

    @property
    def effective_workers(self) -> int:
        return (
            self.n_workers
            if self.backend in ("process", "thread", "pinned")
            else 1
        )

    @property
    def shares_memory(self) -> bool:
        """True when workers run in this process (thread/serial): they
        can read the parent's board-image cache instead of rebuilding."""
        return self.backend not in ("process", "pinned")

    # -- pool lifecycle ---------------------------------------------------

    def _spawn_pool(self, n_workers: int) -> Any:
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=n_workers)
        if self.backend == "pinned":
            return PinnedWorkerPool(n_workers)
        return ProcessPoolExecutor(max_workers=n_workers)

    def _acquire_pool(self, n_workers: int) -> tuple[Any, bool]:
        """Return ``(executor, owned_by_call)``.  Persistent configs
        hand out their lazily-created shared pool (spawned at full
        ``n_workers`` so later, larger searches reuse it too); one-shot
        configs spawn a pool the caller must shut down."""
        if not self.persistent:
            return self._spawn_pool(n_workers), True
        with self._pool_lock:
            if self._pool is None:
                pool = self._spawn_pool(max(self.n_workers, n_workers))
                object.__setattr__(self, "_pool", pool)
                # Leak guard: if this config is dropped (or the
                # interpreter exits) before close(), the finalizer
                # shuts the pool down.  It must not hold a reference
                # to `self`, or the config could never be collected.
                object.__setattr__(
                    self,
                    "_pool_finalizer",
                    weakref.finalize(self, _shutdown_executor, pool),
                )
            return self._pool, False

    def _release_pool(self) -> Executor | None:
        """Detach the finalizer and hand the pool back for shutdown."""
        with self._pool_lock:
            pool = self._pool
            finalizer = self._pool_finalizer
            object.__setattr__(self, "_pool", None)
            object.__setattr__(self, "_pool_finalizer", None)
        if finalizer is not None:
            finalizer.detach()
        return pool

    def _discard_pool(self) -> None:
        """Drop a broken persistent pool so the next call respawns.

        The exporter (if any) survives: its segments are still valid
        and the respawned pool's workers re-attach to them."""
        pool = self._release_pool()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _acquire_exporter(self) -> tuple[ShmExporter, bool]:
        """Return ``(exporter, owned_by_call)``, mirroring
        :meth:`_acquire_pool`: persistent configs share one exporter for
        the pool's lifetime so stable payloads export exactly once."""
        if not self.persistent:
            return ShmExporter(), True
        with self._pool_lock:
            exporter = self._exporter
            if exporter is None or exporter.closed:
                exporter = ShmExporter()
                object.__setattr__(self, "_exporter", exporter)
            return exporter, False

    def _release_exporter(self) -> ShmExporter | None:
        with self._pool_lock:
            exporter = self._exporter
            object.__setattr__(self, "_exporter", None)
        return exporter

    def close(self) -> None:
        """Shut down the persistent pool (no-op if never spawned)."""
        pool = self._release_pool()
        if pool is not None:
            pool.shutdown(wait=True)
        # Unlink shared segments only after the pool has drained: a
        # still-running worker may be attaching them.
        exporter = self._release_exporter()
        if exporter is not None:
            exporter.close()

    def __enter__(self) -> "ParallelConfig":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class PartitionTask:
    """One board partition's worth of work, self-contained and picklable.

    ``k`` (when set) lets functional workers return only the earliest
    ``k`` report rows per query — the only rows the decoder keeps —
    instead of the full ``n``-per-query stream; counters still account
    for the full stream the modeled board would emit.  ``cache_key``
    is the engine's content-addressed board-image key: in-process
    workers (thread backend / serial fallback) use it to share the
    parent's cache directly; for process workers
    :func:`run_partitions` resolves it against the parent cache up
    front and ships the compiled artifact along in ``artifact`` so a
    warm cache skips worker-side rebuilds too.
    """

    p_idx: int
    start: int
    end: int
    dataset_bits: np.ndarray  # the (end-start, d) partition slice
    mode: str  # "simulate" | "functional"
    d: int
    collector_depth: int
    max_fan_in: int
    counter_max_increment: int
    device: APDeviceSpec = GEN1
    k: int | None = None
    cache_key: tuple | None = None
    # Which registered workload executes this task (repro.core.workload).
    # "knn" + mode "simulate"/"functional" is the engine's legacy path;
    # mode "workload" runs the generic compile/execute protocol.
    workload: str = "knn"
    # Workload parameters as sorted (key, value) items — hashable, and
    # rebuilt into a dict worker-side.
    params: tuple = ()
    # Prebuilt board artifact shipped *to* a process worker from a warm
    # parent cache (None = build from dataset_bits on a miss).
    artifact: Any = None
    # Shared-memory descriptors replacing the heavy fields under
    # transport="shm": dataset_ref stands in for dataset_bits (which is
    # stubbed empty) and artifact_shm for artifact.  Workers resolve
    # them into zero-copy views before execution; the pickle path and
    # in-process backends leave both None.
    dataset_ref: ShmArrayRef | None = None
    artifact_shm: Any = None
    # Store-backed dataset descriptor (repro.core.dataset.DatasetSliceRef):
    # for mmap/shm-backed PackedDatasets the engine stubs dataset_bits
    # empty and ships this descriptor-sized handle instead — workers
    # attach the store themselves (an mmap worker maps the .pds by
    # path: zero dataset bytes on the wire, no export step, no shm
    # arena cap).  In-memory ArrayStore tasks leave it None and ride
    # the dataset_ref/pickle transports above, unchanged.
    dataset_slice: Any = None


class _ArtifactShuttle:
    """Minimal cache façade for one process-worker partition.

    Serves the artifact the parent shipped with the task (a warm-cache
    hit crosses the process boundary as data, not shared memory) and
    captures a freshly built artifact so the worker can ship it back —
    the parent then :meth:`~repro.ap.compiler.BoardImageCache.put`\\ s
    it, warming the cache for the next call.
    """

    def __init__(self, artifact: Any = None):
        self.artifact = artifact
        self.built: Any = None

    def get(self, key: tuple) -> Any:
        return self.artifact

    def put(self, key: tuple, value: Any) -> None:
        self.built = value


@dataclass
class PartitionResult:
    """Report batch + counter delta for one executed partition.

    ``artifact``/``cache_key`` carry a board artifact a *process*
    worker had to build back to the parent, which installs it in its
    :class:`~repro.ap.compiler.BoardImageCache`; in-process workers
    write the shared cache directly and leave both ``None``.
    """

    p_idx: int
    q_idx: np.ndarray
    codes: np.ndarray
    cycles: np.ndarray
    counters: RuntimeCounters
    artifact: Any = None
    cache_key: tuple | None = None
    # Generic-workload partial result (mode="workload" tasks); the kNN
    # report-array path leaves it None and fills q_idx/codes/cycles.
    payload: Any = None
    # Worker-side monotonic timestamp taken when execution began.
    # CLOCK_MONOTONIC is system-wide on all supported platforms, so the
    # parent subtracts its submit timestamp to get per-task dispatch
    # (submit→start) latency.  None on paths that skip accounting.
    t_start: float | None = None


def execute_partition(
    task: PartitionTask, queries_bits: np.ndarray, cache=None
) -> PartitionResult:
    """Run one partition end to end (worker-side entry point).

    Resolves shared-memory descriptors, then dispatches through the
    workload registry: every task executes via its
    :class:`~repro.core.workload.Workload`'s ``execute_task`` — the
    kNN workload routes legacy engine tasks to :func:`_execute_knn_task`
    below (the same back-ends the sequential path calls, so parallel
    results stay bit-identical by construction), while generic
    workloads run the protocol's compile/execute default.  ``cache``
    is a :class:`~repro.ap.compiler.BoardImageCache` shared by
    in-process callers (thread workers, serial fallback).  Imports are
    deferred so this module can be imported by :mod:`repro.core.engine`
    without a circular dependency, and so forked workers resolve them
    lazily.
    """
    t_start = time.monotonic()
    from ..core.workload import get_workload

    # Shared-memory descriptors resolve to zero-copy read-only views
    # before the back-ends run; the pickle path carries real arrays and
    # skips this entirely.
    if isinstance(queries_bits, ShmArrayRef):
        queries_bits = resolve_array(queries_bits)
    if task.dataset_ref is not None:
        task = replace(
            task, dataset_bits=resolve_array(task.dataset_ref), dataset_ref=None
        )
    dataset_slice = task.dataset_slice
    if dataset_slice is not None:
        # Store-backed partition: attach the store (one mapping per
        # process, cached) and resolve the zero-copy row window.
        task = replace(
            task, dataset_bits=dataset_slice.resolve(), dataset_slice=None
        )
    if task.artifact_shm is not None:
        task = replace(
            task, artifact=import_artifact_shm(task.artifact_shm), artifact_shm=None
        )
    result = get_workload(task.workload).execute_task(task, queries_bits, cache)
    result.t_start = t_start
    if dataset_slice is not None:
        # Drop the partition's freshly faulted mmap pages back to the
        # page cache so a worker's RSS stays bounded by one partition,
        # not the whole shard it walks over a run.
        dataset_slice.release()
    return result


def _execute_knn_task(
    task: PartitionTask, queries_bits: np.ndarray, cache=None
) -> PartitionResult:
    """The kNN engine's legacy worker body (modes ``simulate`` /
    ``functional``): shared per-partition back-ends plus the artifact-
    shuttle cache protocol for process workers.  Kept verbatim from
    PR 1–5 so the refactor onto the workload protocol changes no
    behavior on the kNN path.
    """
    from ..core.engine import (
        build_functional_board,
        run_partition_functional,
        run_partition_functional_topk,
        run_partition_simulated,
    )
    from ..core.macros import MacroConfig
    from ..core.stream import StreamLayout

    layout = StreamLayout(task.d, task.collector_depth)
    key = task.cache_key
    shuttle = None
    if key is not None and cache is None:
        shuttle = _ArtifactShuttle(task.artifact)
        cache = shuttle
    if task.mode == "simulate":
        q_idx, codes, cycles, counters = run_partition_simulated(
            task.dataset_bits,
            queries_bits,
            layout,
            MacroConfig(
                max_fan_in=task.max_fan_in,
                counter_max_increment=task.counter_max_increment,
            ),
            task.device,
            task.start,
            task.end,
            cache=cache,
            cache_key=key,
        )
    elif task.mode == "functional":
        board = cache.get(key) if key is not None else None
        cache_hit = board is not None
        if board is None:
            board = build_functional_board(task.dataset_bits, layout)
            if key is not None:
                cache.put(key, board)
        if task.k is not None:
            q_idx, codes, cycles, counters = run_partition_functional_topk(
                board, queries_bits, layout, task.start, task.k
            )
        else:
            q_idx, codes, cycles, counters = run_partition_functional(
                board, queries_bits, layout, task.start
            )
        if cache_hit:
            counters.image_cache_hits += 1
    else:
        raise ValueError(f"unknown execution mode {task.mode!r}")
    built = shuttle.built if shuttle is not None else None
    return PartitionResult(
        p_idx=task.p_idx,
        q_idx=q_idx,
        codes=codes,
        cycles=cycles,
        counters=counters,
        artifact=built,
        cache_key=key if built is not None else None,
    )


@dataclass
class PartitionRunReport:
    """All partitions' results plus how the run actually executed.

    ``n_workers`` is the worker-lane count that really ran — 1 when
    the serial path was taken, including silent pool-failure fallback —
    so callers can report true concurrency instead of the requested
    figure.  ``transport`` records how task payloads traveled:
    ``"none"`` (in-process: serial/thread, or serial fallback),
    ``"pickle"``, or ``"shm"``.  ``ipc_payload_bytes`` is the summed
    parent→worker submission size, recorded only under
    ``measure_ipc=True``.

    ``dispatch_overhead_s`` is the mean per-task submit→start latency
    (parent submit timestamp to worker pickup) across the run — the
    cost of getting work *to* a worker, separate from the work itself —
    and ``queue_depth`` the peak number of submissions in flight
    (chunked process runs count chunks; the pinned backend reports its
    ring occupancy).  Serial runs record ``None``/``0``: nothing is
    dispatched.
    """

    results: list[PartitionResult]
    n_workers: int
    transport: str = "none"
    ipc_payload_bytes: int | None = None
    dispatch_overhead_s: float | None = None
    queue_depth: int = 0


def _attach_cached_artifact(task: PartitionTask, cache) -> PartitionTask:
    """Ship a cached board to a process worker instead of raw data.

    On a hit the artifact fully supersedes the dataset slice (workers
    only touch ``dataset_bits`` to *build*), so the slice is replaced
    by an empty stub — pickling both would double the IPC payload the
    artifact shipping exists to avoid.
    """
    if task.cache_key is None:
        return task
    artifact = cache.get(task.cache_key)
    if artifact is None:
        return task
    return replace(
        task,
        artifact=artifact,
        dataset_bits=task.dataset_bits[:0],
        dataset_slice=None,
    )


def _shippable_nbytes(tasks: list[PartitionTask], queries_bits: np.ndarray) -> int:
    """Bytes the pickle path would copy through the executor pipe that
    shared memory can eliminate: per-task query batches, dataset
    slices, and shm-exportable artifacts."""
    total = queries_bits.nbytes * len(tasks)
    for t in tasks:
        total += t.dataset_bits.nbytes
        if t.artifact is not None and getattr(t.artifact, "shm_exportable", False):
            total += getattr(t.artifact, "nbytes", 0)
    return total


def _export_task(task: PartitionTask, exporter: ShmExporter) -> PartitionTask:
    """Swap a task's heavy payload for shared-memory descriptors.

    The dataset slice always exports (an empty stub replaces it, as in
    :func:`_attach_cached_artifact`).  Artifacts export only when they
    opt in via ``shm_exportable`` — reconstructed artifacts hold
    *read-only* views, so only artifacts that never mutate their
    buffers (the functional boards) qualify; others keep riding the
    task pickle.
    """
    updates: dict[str, Any] = {}
    if task.dataset_bits.nbytes:
        updates["dataset_ref"] = exporter.export_array(task.dataset_bits)
        updates["dataset_bits"] = task.dataset_bits[:0]
    if task.artifact is not None and getattr(task.artifact, "shm_exportable", False):
        updates["artifact_shm"] = export_artifact_shm(task.artifact, exporter)
        updates["artifact"] = None
    return replace(task, **updates) if updates else task


def _record_dispatch(
    latencies: list[float], queue_depth: int, payload_bytes: int | None
) -> float | None:
    """One source of truth for dispatch accounting.

    The same latency values feed ``repro_dispatch_latency_seconds``
    (and the trace ``dispatch`` stage) and the returned mean that
    becomes ``PartitionRunReport.dispatch_overhead_s`` — the registry
    and the result field can never disagree.
    """
    reg = _metrics.get_registry()
    if reg.enabled:
        # Register unconditionally (cheap idempotent lookups) so the
        # catalog is identical whatever shape this run took; mutate
        # only what the run actually measured.
        hist = reg.histogram(
            "repro_dispatch_latency_seconds",
            "Per-task submit->start latency across parallel backends.",
        )
        payload = reg.counter(
            "repro_ipc_payload_bytes_total",
            "Parent->worker submission bytes (measure_ipc runs only).",
        )
        if latencies:
            hist.observe_many(latencies)
            _metrics.stage_histogram(reg).labels(stage="dispatch").observe_many(
                latencies
            )
        reg.gauge(
            "repro_dispatch_queue_depth",
            "Peak submitted-not-finished count of the last parallel run.",
        ).set(queue_depth)
        if payload_bytes:
            payload.inc(payload_bytes)
    if not latencies:
        return None
    return sum(latencies) / len(latencies)


def _chunk_bounds(n_items: int, n_chunks: int) -> list[int]:
    """Balanced contiguous chunk boundaries (first chunks get the
    remainder), as ``n_chunks + 1`` fenceposts."""
    base, rem = divmod(n_items, n_chunks)
    bounds = [0]
    for i in range(n_chunks):
        bounds.append(bounds[-1] + base + (1 if i < rem else 0))
    return bounds


def _execute_chunk(
    tasks: list[PartitionTask], queries_bits: np.ndarray, cache=None
) -> list[PartitionResult]:
    """One worker's amortized submission: a whole task sublist rides a
    single ``executor.submit``, so the stock process backend pays
    dispatch once per worker instead of once per partition."""
    return [execute_partition(t, queries_bits, cache) for t in tasks]


def _run_serial(
    tasks: list[PartitionTask], queries_bits: np.ndarray, cache=None
) -> PartitionRunReport:
    return PartitionRunReport(
        results=[execute_partition(t, queries_bits, cache) for t in tasks],
        n_workers=1,
    )


def run_partitions(
    tasks: list[PartitionTask],
    queries_bits: np.ndarray,
    config: ParallelConfig = ParallelConfig(),
    cache=None,
) -> PartitionRunReport:
    """Execute partition tasks, possibly across worker processes/threads.

    The report's results are **sorted by partition index** regardless
    of worker completion order, so downstream decode/merge and counter
    aggregation are deterministic and bit-identical to the sequential
    path.  ``cache`` (a board-image cache) is shared with workers that
    run in the parent's memory — thread backend, serial execution, or
    serial fallback.  Process workers cannot share it, but stay
    cache-aware through artifact shipping: cached boards travel out
    with their tasks, and boards a worker had to build travel back
    with its result and are installed here, so a second call (or a
    second process-backed engine sharing the cache) recompiles
    nothing.
    """
    queries_bits = np.ascontiguousarray(queries_bits, dtype=np.uint8)
    # Thread workers share the parent's memory, so they may use the
    # cache; serial execution (including fallback) is in-process by
    # definition and always may.
    worker_cache = cache if config.shares_memory else None
    n_workers = min(config.effective_workers, len(tasks))
    if n_workers <= 1:
        return _run_serial(tasks, queries_bits, cache)
    try:
        executor, owned = config._acquire_pool(n_workers)
    except _POOL_ERRORS:
        if config.fallback_serial:
            return _run_serial(tasks, queries_bits, cache)
        raise
    worker_tasks = tasks
    if cache is not None and worker_cache is None:
        # Process backend with a cache-aware parent: attach each
        # cached artifact to its task so warm workers skip the build.
        worker_tasks = [_attach_cached_artifact(t, cache) for t in tasks]

    # -- transport: swap heavy payloads for shared-memory descriptors --
    # Stable payloads (dataset slices, warm artifacts) go through the
    # config's exporter — one export per pool lifetime for persistent
    # configs; the per-call query batch gets a call-scoped exporter
    # unlinked as soon as the futures resolve.  Any shm failure (no
    # /dev/shm, segment creation refused) degrades to the pickle path.
    transport = "pickle" if config.backend in ("process", "pinned") else "none"
    queries_arg: Any = queries_bits
    call_exporters: list[ShmExporter] = []
    if (
        config.backend in ("process", "pinned")
        and config.transport != "pickle"
        and (
            config.transport == "shm"
            or _shippable_nbytes(worker_tasks, queries_bits) >= SHM_MIN_PAYLOAD_BYTES
        )
        and shm_available()
    ):
        try:
            q_exporter = ShmExporter()
            call_exporters.append(q_exporter)
            queries_ref = q_exporter.export_array(queries_bits)
            exporter, exporter_owned = config._acquire_exporter()
            if exporter_owned:
                call_exporters.append(exporter)
            shm_tasks = [_export_task(t, exporter) for t in worker_tasks]
            worker_tasks = shm_tasks
            queries_arg = queries_ref
            transport = "shm"
        except (OSError, ValueError, RuntimeError, pickle.PicklingError):
            for exp in call_exporters:
                exp.close()
            call_exporters = []
            queries_arg = queries_bits
            transport = "pickle"

    payload_bytes = None
    if config.measure_ipc:
        # Thread pools hand references around in-process: no IPC copy.
        payload_bytes = (
            sum(
                len(pickle.dumps((t, queries_arg), protocol=pickle.HIGHEST_PROTOCOL))
                for t in worker_tasks
            )
            if config.backend in ("process", "pinned")
            else 0
        )
    # Dispatch accounting: submit timestamps aligned with results in
    # submission order; worker-side t_start closes each measurement.
    submit_times: list[float] = []
    dispatch_latencies: list[float] = []
    queue_depth = 0
    try:
        if config.backend == "pinned":
            ring_report = executor.run_tasks(worker_tasks, queries_arg)
            results = ring_report.results
            dispatch_latencies = [
                lat for lat in ring_report.dispatch_latencies_s if lat is not None
            ]
            queue_depth = ring_report.max_queue_depth
        elif config.backend == "process" and len(worker_tasks) > n_workers:
            # Chunked dispatch: one submit per worker-sized sublist, so
            # executor overhead is paid per worker, not per partition.
            bounds = _chunk_bounds(len(worker_tasks), n_workers)
            chunks = [
                worker_tasks[a:b] for a, b in zip(bounds, bounds[1:]) if b > a
            ]
            futures = []
            for chunk in chunks:
                t_sub = time.monotonic()
                futures.append(
                    executor.submit(_execute_chunk, chunk, queries_arg)
                )
                submit_times.extend([t_sub] * len(chunk))
            results = [r for f in futures for r in f.result()]
            queue_depth = len(chunks)
        else:
            futures = []
            for t in worker_tasks:
                submit_times.append(time.monotonic())
                futures.append(
                    executor.submit(
                        execute_partition, t, queries_arg, worker_cache
                    )
                )
            results = [f.result() for f in futures]
            queue_depth = len(worker_tasks)
    except (*_POOL_ERRORS, RingBrokenError, BrokenProcessPool) as exc:
        # Pool creation can succeed but worker spawn still fail (e.g.
        # blocked semaphores); degrade the same way.  A broken
        # persistent pool is discarded so the next call respawns.
        # Fall back with the ORIGINAL tasks: artifact-attached ones
        # carry stubbed dataset slices, and the in-process path must
        # be able to rebuild any partition the cache has since evicted.
        if not owned:
            config._discard_pool()
        if config.fallback_serial:
            return _run_serial(tasks, queries_bits, cache)
        raise RuntimeError("parallel partition execution failed") from exc
    finally:
        if owned:
            executor.shutdown(wait=True)
        # Unlink call-scoped segments only after the pool is done with
        # them (futures resolved or cancelled, pool drained above).
        for exp in call_exporters:
            exp.close()
    if cache is not None and worker_cache is None:
        # Install boards the workers had to build: the parent cache
        # warms up even though the build happened out of process.
        for res in results:
            if res.artifact is not None and res.cache_key is not None:
                cache.put(res.cache_key, res.artifact)
    if submit_times:
        # Executor paths: pair each submission timestamp with the
        # worker-recorded start of the matching result (same order).
        dispatch_latencies = [
            max(0.0, res.t_start - t_sub)
            for res, t_sub in zip(results, submit_times)
            if res.t_start is not None
        ]
    dispatch_overhead = _record_dispatch(
        dispatch_latencies, queue_depth, payload_bytes
    )
    return PartitionRunReport(
        results=sorted(results, key=lambda r: r.p_idx),
        n_workers=n_workers,
        transport=transport,
        ipc_payload_bytes=payload_bytes,
        dispatch_overhead_s=dispatch_overhead,
        queue_depth=queue_depth,
    )
