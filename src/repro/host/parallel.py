"""Sharded parallel partition execution for the kNN engine.

The paper hides host-side latency by pipelining (Section III-C); a
production host has a second lever the single-board timeline model
cannot express: board partitions are *independent* until the final
top-k merge, so a multi-core host can execute them concurrently —
each worker simulates (or functionally models) its own partitions and
streams ``(q_idx, codes, cycles)`` report batches back to the parent,
which decodes them through the exact same merge path as the sequential
engine.  Results are therefore bit-identical to sequential execution:
workers return per-partition report arrays plus per-partition
:class:`~repro.ap.runtime.RuntimeCounters` deltas, and the parent
consumes both in partition order, so counter aggregation is exact and
the (distance, index) tie-break is untouched.

Backends
--------

* ``backend="process"`` — a :class:`~concurrent.futures.
  ProcessPoolExecutor`.  True multi-core for the cycle simulator;
  workers rebuild partition artifacts from the shipped dataset slice
  (the parent's :class:`~repro.ap.compiler.BoardImageCache` is
  per-process).
* ``backend="thread"`` — a :class:`~concurrent.futures.
  ThreadPoolExecutor`.  The functional back-end spends its time inside
  NumPy kernels that release the GIL, so threads overlap almost as
  well as processes there while skipping query-batch pickling — and,
  because threads share the parent's memory, workers consult and fill
  the engine's board-image cache directly: ``parallel=`` and
  ``cache=`` finally compose.
* ``backend="serial"`` — in-process loop regardless of ``n_workers``
  (debugging aid, and the silent fallback when a pool cannot be
  created).

Pool lifetime
-------------

By default a pool is created per :func:`run_partitions` call and torn
down afterwards — leak-proof for one-shot batches.  A long-lived
service issuing many small searches should set ``persistent=True``:
the :class:`ParallelConfig` then owns a lazily-spawned reusable pool,
usable as a context manager (or via explicit :meth:`~ParallelConfig.
close`), so repeated searches skip worker spawn cost entirely.
"""

from __future__ import annotations

import threading
from concurrent.futures import Executor, ProcessPoolExecutor, ThreadPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

import numpy as np

from ..ap.device import APDeviceSpec, GEN1
from ..ap.runtime import RuntimeCounters

__all__ = [
    "ParallelConfig",
    "PartitionTask",
    "PartitionResult",
    "PartitionRunReport",
    "run_partitions",
]

_POOL_ERRORS = (OSError, PermissionError, ImportError)


@dataclass(frozen=True)
class ParallelConfig:
    """How the engine fans partitions out across workers.

    ``n_workers <= 1`` means serial in-process execution; ``backend``
    picks ``"process"``, ``"thread"``, or ``"serial"`` (forces serial
    regardless of ``n_workers``; useful for debugging).
    ``fallback_serial`` controls what happens when a pool cannot be
    created: degrade gracefully (default) or raise.

    ``persistent=True`` makes this config own a reusable worker pool:
    spawned lazily on the first :func:`run_partitions` call, reused by
    every later call, released by :meth:`close` (or by using the
    config as a context manager).  The pool handle never participates
    in equality/hashing, so configs compare by their settings alone.
    """

    n_workers: int = 1
    backend: str = "process"
    fallback_serial: bool = True
    persistent: bool = False
    _pool: Executor | None = field(
        default=None, init=False, repr=False, compare=False
    )
    # Guards the persistent pool's lazy spawn/teardown: a long-lived
    # service may issue concurrent searches through one config, and an
    # unlocked first-use race would leak a second executor.
    _pool_lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.backend not in ("process", "thread", "serial"):
            raise ValueError(f"unknown parallel backend {self.backend!r}")

    @property
    def effective_workers(self) -> int:
        return self.n_workers if self.backend in ("process", "thread") else 1

    @property
    def shares_memory(self) -> bool:
        """True when workers run in this process (thread/serial): they
        can read the parent's board-image cache instead of rebuilding."""
        return self.backend != "process"

    # -- pool lifecycle ---------------------------------------------------

    def _spawn_pool(self, n_workers: int) -> Executor:
        if self.backend == "thread":
            return ThreadPoolExecutor(max_workers=n_workers)
        return ProcessPoolExecutor(max_workers=n_workers)

    def _acquire_pool(self, n_workers: int) -> tuple[Executor, bool]:
        """Return ``(executor, owned_by_call)``.  Persistent configs
        hand out their lazily-created shared pool (spawned at full
        ``n_workers`` so later, larger searches reuse it too); one-shot
        configs spawn a pool the caller must shut down."""
        if not self.persistent:
            return self._spawn_pool(n_workers), True
        with self._pool_lock:
            if self._pool is None:
                object.__setattr__(
                    self, "_pool", self._spawn_pool(max(self.n_workers, n_workers))
                )
            return self._pool, False

    def _discard_pool(self) -> None:
        """Drop a broken persistent pool so the next call respawns."""
        with self._pool_lock:
            pool = self._pool
            object.__setattr__(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Shut down the persistent pool (no-op if never spawned)."""
        with self._pool_lock:
            pool = self._pool
            object.__setattr__(self, "_pool", None)
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "ParallelConfig":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


@dataclass(frozen=True)
class PartitionTask:
    """One board partition's worth of work, self-contained and picklable.

    ``k`` (when set) lets functional workers return only the earliest
    ``k`` report rows per query — the only rows the decoder keeps —
    instead of the full ``n``-per-query stream; counters still account
    for the full stream the modeled board would emit.  ``cache_key``
    is the engine's content-addressed board-image key: in-process
    workers (thread backend / serial fallback) use it to share the
    parent's cache, process workers ignore it.
    """

    p_idx: int
    start: int
    end: int
    dataset_bits: np.ndarray  # the (end-start, d) partition slice
    mode: str  # "simulate" | "functional"
    d: int
    collector_depth: int
    max_fan_in: int
    counter_max_increment: int
    device: APDeviceSpec = GEN1
    k: int | None = None
    cache_key: tuple | None = None


@dataclass
class PartitionResult:
    """Report batch + counter delta for one executed partition."""

    p_idx: int
    q_idx: np.ndarray
    codes: np.ndarray
    cycles: np.ndarray
    counters: RuntimeCounters


def execute_partition(
    task: PartitionTask, queries_bits: np.ndarray, cache=None
) -> PartitionResult:
    """Run one partition end to end (worker-side entry point).

    Delegates to the engine's shared per-partition back-ends — the same
    functions the sequential path calls — so parallel results are
    bit-identical by construction.  ``cache`` is a
    :class:`~repro.ap.compiler.BoardImageCache` shared by in-process
    callers (thread workers, serial fallback); it is consulted/filled
    only when the task carries a ``cache_key``.  Imports are deferred
    so this module can be imported by :mod:`repro.core.engine` without
    a circular dependency, and so forked workers resolve them lazily.
    """
    from ..core.engine import (
        build_functional_board,
        run_partition_functional,
        run_partition_functional_topk,
        run_partition_simulated,
    )
    from ..core.macros import MacroConfig
    from ..core.stream import StreamLayout

    layout = StreamLayout(task.d, task.collector_depth)
    key = task.cache_key if cache is not None else None
    if task.mode == "simulate":
        q_idx, codes, cycles, counters = run_partition_simulated(
            task.dataset_bits,
            queries_bits,
            layout,
            MacroConfig(
                max_fan_in=task.max_fan_in,
                counter_max_increment=task.counter_max_increment,
            ),
            task.device,
            task.start,
            task.end,
            cache=cache,
            cache_key=key,
        )
    elif task.mode == "functional":
        board = cache.get(key) if key is not None else None
        cache_hit = board is not None
        if board is None:
            board = build_functional_board(task.dataset_bits, layout)
            if key is not None:
                cache.put(key, board)
        if task.k is not None:
            q_idx, codes, cycles, counters = run_partition_functional_topk(
                board, queries_bits, layout, task.start, task.k
            )
        else:
            q_idx, codes, cycles, counters = run_partition_functional(
                board, queries_bits, layout, task.start
            )
        if cache_hit:
            counters.image_cache_hits += 1
    else:
        raise ValueError(f"unknown execution mode {task.mode!r}")
    return PartitionResult(
        p_idx=task.p_idx, q_idx=q_idx, codes=codes, cycles=cycles, counters=counters
    )


@dataclass
class PartitionRunReport:
    """All partitions' results plus how the run actually executed.

    ``n_workers`` is the worker-lane count that really ran — 1 when
    the serial path was taken, including silent pool-failure fallback —
    so callers can report true concurrency instead of the requested
    figure.
    """

    results: list[PartitionResult]
    n_workers: int


def _run_serial(
    tasks: list[PartitionTask], queries_bits: np.ndarray, cache=None
) -> PartitionRunReport:
    return PartitionRunReport(
        results=[execute_partition(t, queries_bits, cache) for t in tasks],
        n_workers=1,
    )


def run_partitions(
    tasks: list[PartitionTask],
    queries_bits: np.ndarray,
    config: ParallelConfig = ParallelConfig(),
    cache=None,
) -> PartitionRunReport:
    """Execute partition tasks, possibly across worker processes/threads.

    The report's results are **sorted by partition index** regardless
    of worker completion order, so downstream decode/merge and counter
    aggregation are deterministic and bit-identical to the sequential
    path.  ``cache`` (a board-image cache) is forwarded to workers
    only when they share the parent's memory — thread backend, serial
    execution, or serial fallback; process workers always rebuild.
    """
    queries_bits = np.ascontiguousarray(queries_bits, dtype=np.uint8)
    # Thread workers share the parent's memory, so they may use the
    # cache; serial execution (including fallback) is in-process by
    # definition and always may.
    worker_cache = cache if config.shares_memory else None
    n_workers = min(config.effective_workers, len(tasks))
    if n_workers <= 1:
        return _run_serial(tasks, queries_bits, cache)
    try:
        executor, owned = config._acquire_pool(n_workers)
    except _POOL_ERRORS:
        if config.fallback_serial:
            return _run_serial(tasks, queries_bits, cache)
        raise
    try:
        futures = [
            executor.submit(execute_partition, t, queries_bits, worker_cache)
            for t in tasks
        ]
        results = [f.result() for f in futures]
    except (*_POOL_ERRORS, BrokenProcessPool) as exc:
        # Pool creation can succeed but worker spawn still fail (e.g.
        # blocked semaphores); degrade the same way.  A broken
        # persistent pool is discarded so the next call respawns.
        if not owned:
            config._discard_pool()
        if config.fallback_serial:
            return _run_serial(tasks, queries_bits, cache)
        raise RuntimeError("parallel partition execution failed") from exc
    finally:
        if owned:
            executor.shutdown(wait=True)
    return PartitionRunReport(
        results=sorted(results, key=lambda r: r.p_idx),
        n_workers=n_workers,
    )
