"""Sharded parallel partition execution for the kNN engine.

The paper hides host-side latency by pipelining (Section III-C); a
production host has a second lever the single-board timeline model
cannot express: board partitions are *independent* until the final
top-k merge, so a multi-core host can execute them concurrently —
each worker simulates (or functionally models) its own partitions and
streams ``(q_idx, codes, cycles)`` report batches back to the parent,
which decodes them through the exact same merge path as the sequential
engine.  Results are therefore bit-identical to sequential execution:
workers return per-partition report arrays plus per-partition
:class:`~repro.ap.runtime.RuntimeCounters` deltas, and the parent
consumes both in partition order, so counter aggregation is exact and
the (distance, index) tie-break is untouched.

:func:`run_partitions` is the entry point.  It uses a
:class:`~concurrent.futures.ProcessPoolExecutor` (configurable
``n_workers``) and falls back to in-process serial execution when the
pool cannot be created (sandboxes without ``fork``/semaphores) or when
``n_workers <= 1``.  Workers rebuild their partition artifacts from the
shipped dataset slice — the parent-side board-image cache
(:class:`~repro.ap.compiler.BoardImageCache`) is per-process and only
accelerates the serial path.  The pool is created per call and torn
down afterwards: leak-proof for one-shot batches, but a long-lived
service issuing many small searches pays worker spawn cost each time
(a persistent pool is a ROADMAP item).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

import numpy as np

from ..ap.device import APDeviceSpec, GEN1
from ..ap.runtime import RuntimeCounters

__all__ = [
    "ParallelConfig",
    "PartitionTask",
    "PartitionResult",
    "PartitionRunReport",
    "run_partitions",
]


@dataclass(frozen=True)
class ParallelConfig:
    """How the engine fans partitions out across workers.

    ``n_workers <= 1`` means serial in-process execution;
    ``backend="serial"`` forces it regardless of ``n_workers`` (useful
    for debugging).  ``fallback_serial`` controls what happens when the
    process pool cannot be created: degrade gracefully (default) or
    raise.
    """

    n_workers: int = 1
    backend: str = "process"
    fallback_serial: bool = True

    def __post_init__(self) -> None:
        if self.n_workers < 0:
            raise ValueError("n_workers must be >= 0")
        if self.backend not in ("process", "serial"):
            raise ValueError(f"unknown parallel backend {self.backend!r}")

    @property
    def effective_workers(self) -> int:
        return self.n_workers if self.backend == "process" else 1


@dataclass(frozen=True)
class PartitionTask:
    """One board partition's worth of work, self-contained and picklable."""

    p_idx: int
    start: int
    end: int
    dataset_bits: np.ndarray  # the (end-start, d) partition slice
    mode: str  # "simulate" | "functional"
    d: int
    collector_depth: int
    max_fan_in: int
    counter_max_increment: int
    device: APDeviceSpec = GEN1


@dataclass
class PartitionResult:
    """Report batch + counter delta for one executed partition."""

    p_idx: int
    q_idx: np.ndarray
    codes: np.ndarray
    cycles: np.ndarray
    counters: RuntimeCounters


def execute_partition(
    task: PartitionTask, queries_bits: np.ndarray
) -> PartitionResult:
    """Run one partition end to end (worker-side entry point).

    Delegates to the engine's shared per-partition back-ends — the same
    functions the sequential path calls — so parallel results are
    bit-identical by construction.  Imports are deferred so this module
    can be imported by :mod:`repro.core.engine` without a circular
    dependency, and so forked workers resolve them lazily.
    """
    from ..core.engine import (
        build_functional_board,
        run_partition_functional,
        run_partition_simulated,
    )
    from ..core.macros import MacroConfig
    from ..core.stream import StreamLayout

    layout = StreamLayout(task.d, task.collector_depth)
    if task.mode == "simulate":
        q_idx, codes, cycles, counters = run_partition_simulated(
            task.dataset_bits,
            queries_bits,
            layout,
            MacroConfig(
                max_fan_in=task.max_fan_in,
                counter_max_increment=task.counter_max_increment,
            ),
            task.device,
            task.start,
            task.end,
        )
    elif task.mode == "functional":
        board = build_functional_board(task.dataset_bits, layout)
        q_idx, codes, cycles, counters = run_partition_functional(
            board, queries_bits, layout, task.start
        )
    else:
        raise ValueError(f"unknown execution mode {task.mode!r}")
    return PartitionResult(
        p_idx=task.p_idx, q_idx=q_idx, codes=codes, cycles=cycles, counters=counters
    )


@dataclass
class PartitionRunReport:
    """All partitions' results plus how the run actually executed.

    ``n_workers`` is the worker-process count that really ran — 1 when
    the serial path was taken, including silent pool-failure fallback —
    so callers can report true concurrency instead of the requested
    figure.
    """

    results: list[PartitionResult]
    n_workers: int


def _run_serial(
    tasks: list[PartitionTask], queries_bits: np.ndarray
) -> PartitionRunReport:
    return PartitionRunReport(
        results=[execute_partition(t, queries_bits) for t in tasks],
        n_workers=1,
    )


def run_partitions(
    tasks: list[PartitionTask],
    queries_bits: np.ndarray,
    config: ParallelConfig = ParallelConfig(),
) -> PartitionRunReport:
    """Execute partition tasks, possibly across worker processes.

    The report's results are **sorted by partition index** regardless
    of worker completion order, so downstream decode/merge and counter
    aggregation are deterministic and bit-identical to the sequential
    path.
    """
    queries_bits = np.ascontiguousarray(queries_bits, dtype=np.uint8)
    n_workers = min(config.effective_workers, len(tasks))
    if n_workers <= 1:
        return _run_serial(tasks, queries_bits)
    try:
        executor = ProcessPoolExecutor(max_workers=n_workers)
    except (OSError, PermissionError, ImportError):
        if config.fallback_serial:
            return _run_serial(tasks, queries_bits)
        raise
    try:
        futures = [
            executor.submit(execute_partition, t, queries_bits) for t in tasks
        ]
        results = [f.result() for f in futures]
    except (OSError, PermissionError, BrokenProcessPool) as exc:
        # Pool creation can succeed but worker spawn still fail (e.g.
        # blocked semaphores); degrade the same way.
        if config.fallback_serial:
            return _run_serial(tasks, queries_bits)
        raise RuntimeError("parallel partition execution failed") from exc
    finally:
        executor.shutdown(wait=True)
    return PartitionRunReport(
        results=sorted(results, key=lambda r: r.p_idx),
        n_workers=n_workers,
    )
