"""Replica groups: failover, hedged reads, and health tracking.

A :class:`ReplicaGroup` wraps N :class:`~repro.host.rpc.RemoteShard`
clients that serve the *same* shard index (same rows, same global
offset) and exposes the single-shard client surface — ``info()``,
``search()``, ``search_workload()``, ``ping()``, byte counters — so
:class:`~repro.host.rpc.RemoteShardPool` fans out per group without
knowing replicas exist.  Three mechanisms turn replication into
availability:

**Primary selection by tracked health.**  Every replica carries a
:class:`ReplicaHealth`: an EWMA of observed request latency, a bounded
window of recent latencies (for the hedge-delay quantile), and a
consecutive-failure circuit breaker.  ``failure_threshold`` straight
failures open the breaker; an open breaker stops attracting primary
traffic until ``open_cooldown_s`` has passed, after which it is
*half-open* — the next request may probe it, one success re-closes it,
a failed probe re-opens it with a fresh cooldown.  Candidates are
ranked (closed < half-open < open, then by EWMA), and an open breaker
is never a reason to refuse outright: with every breaker open the
group still tries everything rather than manufacturing a partial
result.

**Failover.**  A failed attempt (connect error, timeout, reset,
protocol violation, server-side error) immediately launches the next
candidate instead of surfacing the failure; the group only raises when
every replica failed.  The pool therefore marks a slot
``failed_shards`` only when the *group* is exhausted.

**Hedged reads.**  With two or more replicas, a request that has not
answered within the hedge delay gets one speculative duplicate on the
next-best replica; the first complete answer wins and the loser's
in-flight connection is aborted (it reconnects fresh next use, and its
cancellation is not counted as a health failure).  The delay adapts:
``factor`` x the observed p95 latency across the group, clamped to
``[min_delay_s, max_delay_s]``, with ``initial_delay_s`` standing in
until enough observations exist — or pin it with ``fixed_delay_s``
(the CLI's ``--hedge-delay-ms``).  Requests are idempotent reads, so a
duplicated search is merely redundant work, never a correctness
hazard.

Groups parse from the address syntax ``host:port|host:port`` (the CLI
accepts it anywhere a shard address goes); a plain ``host:port`` is a
group of one that bypasses the executor entirely — the unreplicated
rack pays nothing for this layer.
"""

from __future__ import annotations

import math
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ThreadPoolExecutor, wait
from dataclasses import dataclass

from ..perf import metrics as _metrics

__all__ = [
    "HealthPolicy",
    "HedgePolicy",
    "ReplicaHealth",
    "ReplicaGroup",
    "STATE_CLOSED",
    "STATE_OPEN",
    "STATE_HALF_OPEN",
]

STATE_CLOSED = "closed"
STATE_OPEN = "open"
STATE_HALF_OPEN = "half-open"


def _breaker_transitions():
    """Transitions counter, labeled by the state entered.  ``half-open``
    is derived from the clock (no stored event), so only ``open`` and
    ``closed`` entries are countable transitions."""
    return _metrics.get_registry().counter(
        "repro_replica_breaker_transitions_total",
        "Circuit-breaker state entries across all replica groups.",
        labelnames=("to",),
    )


@dataclass(frozen=True)
class HealthPolicy:
    """Knobs for per-replica health tracking and the circuit breaker."""

    failure_threshold: int = 3  # consecutive failures that open the breaker
    open_cooldown_s: float = 1.0  # open -> half-open (probe allowed) delay
    ewma_alpha: float = 0.2  # weight of the newest latency sample
    latency_window: int = 64  # samples kept for quantile estimates


@dataclass(frozen=True)
class HedgePolicy:
    """Knobs for speculative re-issue of slow requests.

    ``fixed_delay_s`` pins the hedge delay outright; otherwise it is
    ``factor`` x the group's observed p``quantile`` latency, clamped to
    ``[min_delay_s, max_delay_s]``, with ``initial_delay_s`` used until
    ``min_observations`` samples exist.
    """

    enabled: bool = True
    fixed_delay_s: float | None = None
    quantile: float = 0.95
    factor: float = 1.5
    min_delay_s: float = 0.002
    max_delay_s: float = 1.0
    initial_delay_s: float = 0.05
    min_observations: int = 3


class ReplicaHealth:
    """Observed health of one replica.

    Tracks an EWMA of request latency, a bounded recent-latency window,
    and a consecutive-failure circuit breaker.  The breaker state is
    *derived* from ``(_opened_at, clock)`` rather than stored, so
    open -> half-open needs no timer thread; ``clock`` is injectable
    for deterministic tests.  Thread-safe: the group's hedged path
    resolves futures on one thread, but probes and user code may read
    concurrently.
    """

    def __init__(
        self,
        policy: HealthPolicy | None = None,
        clock=time.monotonic,
    ):
        self.policy = policy or HealthPolicy()
        self._clock = clock
        self._lock = threading.Lock()
        self.ewma_latency_s: float | None = None
        self.latencies: deque[float] = deque(maxlen=self.policy.latency_window)
        self.consecutive_failures = 0
        self.successes = 0
        self.failures = 0
        self._opened_at: float | None = None

    def _state_locked(self) -> str:
        if self._opened_at is None:
            return STATE_CLOSED
        if self._clock() - self._opened_at >= self.policy.open_cooldown_s:
            return STATE_HALF_OPEN
        return STATE_OPEN

    @property
    def state(self) -> str:
        with self._lock:
            return self._state_locked()

    def record_success(self, latency_s: float) -> None:
        with self._lock:
            self.successes += 1
            self.consecutive_failures = 0
            reclosed = self._opened_at is not None
            self._opened_at = None  # a success (incl. a probe) re-closes
            alpha = self.policy.ewma_alpha
            if self.ewma_latency_s is None:
                self.ewma_latency_s = float(latency_s)
            else:
                self.ewma_latency_s = (
                    (1.0 - alpha) * self.ewma_latency_s + alpha * latency_s
                )
            self.latencies.append(float(latency_s))
        if reclosed:
            _breaker_transitions().labels(to=STATE_CLOSED).inc()

    def record_failure(self) -> None:
        with self._lock:
            self.failures += 1
            self.consecutive_failures += 1
            # A failed half-open probe re-opens with a FRESH cooldown;
            # below the threshold a closed breaker stays closed.
            opened = False
            if (
                self._state_locked() != STATE_CLOSED
                or self.consecutive_failures >= self.policy.failure_threshold
            ):
                self._opened_at = self._clock()
                opened = True
        if opened:
            _breaker_transitions().labels(to=STATE_OPEN).inc()

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "state": self._state_locked(),
                "ewma_latency_s": self.ewma_latency_s,
                "consecutive_failures": self.consecutive_failures,
                "successes": self.successes,
                "failures": self.failures,
            }


def parse_group_spec(spec) -> list[str]:
    """``"a:1|b:2"`` (or an iterable of addresses) -> address list."""
    if isinstance(spec, str):
        parts = [a.strip() for a in spec.split("|")]
    else:
        parts = [str(a).strip() for a in spec]
    parts = [a for a in parts if a]
    if not parts:
        raise ValueError(f"empty replica group spec {spec!r}")
    return parts


class ReplicaGroup:
    """N replicas of one shard behind the single-shard client surface.

    See the module docstring for the availability model.  Like
    :class:`~repro.host.rpc.RemoteShard`, a group is driven by one pool
    lane per batch; the internal executor exists only to overlap a
    hedge/failover with the request it is backing up.
    """

    def __init__(
        self,
        spec,
        timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        retries: int = 1,
        hedge: HedgePolicy | None = None,
        health: HealthPolicy | None = None,
        clock=time.monotonic,
    ):
        from .rpc import RemoteShard

        addresses = parse_group_spec(spec)
        self.replicas = [
            RemoteShard(
                addr, timeout_s=timeout_s,
                connect_timeout_s=connect_timeout_s, retries=retries,
            )
            for addr in addresses
        ]
        self.address = "|".join(s.address for s in self.replicas)
        self.hedge = hedge or HedgePolicy()
        self.health_policy = health or HealthPolicy()
        self.health = [
            ReplicaHealth(self.health_policy, clock=clock)
            for _ in self.replicas
        ]
        self._clock = clock
        self._lock = threading.Lock()  # counters + executor lifecycle
        self._executor_pool: ThreadPoolExecutor | None = None
        self._info = None  # first successful handshake, for agreement checks
        self.failovers = 0
        self.hedges = 0
        self.hedge_wins = 0
        # Registry twins of the three counters above: each increment
        # site bumps both, so snapshot and attribute always agree.
        reg = _metrics.get_registry()
        self._m_failovers = reg.counter(
            "repro_replica_failovers_total",
            "Failed attempts that launched the next replica candidate.",
        )
        self._m_hedges = reg.counter(
            "repro_replica_hedges_total",
            "Speculative duplicate requests launched by the hedge timer.",
        )
        self._m_hedge_wins = reg.counter(
            "repro_replica_hedge_wins_total",
            "Hedged duplicates that answered before the primary.",
        )
        # Registered (not incremented) here so the family appears in
        # the catalog before any breaker ever trips.
        _breaker_transitions()

    # -- surface parity with RemoteShard -----------------------------------

    @property
    def n_replicas(self) -> int:
        return len(self.replicas)

    @property
    def bytes_sent(self) -> int:
        return sum(s.bytes_sent for s in self.replicas)

    @property
    def bytes_received(self) -> int:
        return sum(s.bytes_received for s in self.replicas)

    def _drop_connection(self) -> None:
        for shard in self.replicas:
            shard.close()  # drops under the shard's own lock; reusable

    def health_snapshot(self) -> list[dict]:
        out = []
        for shard, h in zip(self.replicas, self.health):
            snap = h.snapshot()
            snap["address"] = shard.address
            out.append(snap)
        return out

    # -- candidate ranking --------------------------------------------------

    def _candidates(self) -> list[int]:
        """Replica indices in attempt order: healthiest first, but every
        replica is always a candidate — an open breaker deprioritizes,
        it never refuses (refusing would fabricate a partial result)."""
        rank = {STATE_CLOSED: 0, STATE_HALF_OPEN: 1, STATE_OPEN: 2}

        def key(i: int):
            h = self.health[i]
            ewma = h.ewma_latency_s
            return (
                rank[h.state],
                ewma if ewma is not None else math.inf,
                i,
            )

        return sorted(range(len(self.replicas)), key=key)

    # -- hedge delay --------------------------------------------------------

    def _hedge_delay(self) -> float:
        policy = self.hedge
        if policy.fixed_delay_s is not None:
            return max(0.0, float(policy.fixed_delay_s))
        samples: list[float] = []
        for h in self.health:
            samples.extend(h.latencies)
        if len(samples) < policy.min_observations:
            return policy.initial_delay_s
        samples.sort()
        idx = min(
            len(samples) - 1,
            max(0, math.ceil(policy.quantile * len(samples)) - 1),
        )
        return min(
            policy.max_delay_s,
            max(policy.min_delay_s, policy.factor * samples[idx]),
        )

    # -- request execution --------------------------------------------------

    def _timed(self, i: int, op):
        shard = self.replicas[i]
        shard._clear_abort()
        t0 = time.perf_counter()
        result = op(shard)
        return result, time.perf_counter() - t0

    def _call(self, i: int, op):
        """One attempt on replica ``i``, recording its health."""
        from .rpc import RemoteShardError, RpcProtocolError

        try:
            result, latency = self._timed(i, op)
        except (RemoteShardError, RpcProtocolError, OSError):
            self.health[i].record_failure()
            raise
        self.health[i].record_success(latency)
        return result

    def _executor(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._executor_pool is None:
                self._executor_pool = ThreadPoolExecutor(
                    max_workers=max(2, len(self.replicas)),
                    thread_name_prefix=f"repro-replica-{self.address}",
                )
            return self._executor_pool

    def _run(self, op):
        from .rpc import RemoteShardError

        order = self._candidates()
        if len(order) == 1:
            return self._call(order[0], op)
        if self.hedge.enabled:
            return self._run_hedged(op, order)
        # Failover without hedging: strictly sequential attempts.
        errors: list[str] = []
        last_exc: Exception | None = None
        for pos, i in enumerate(order):
            try:
                return self._call(i, op)
            except (RemoteShardError, OSError) as exc:
                errors.append(f"{self.replicas[i].address}: {exc}")
                last_exc = exc
                if pos + 1 < len(order):
                    with self._lock:
                        self.failovers += 1
                    self._m_failovers.inc()
        raise RemoteShardError(
            f"replica group {self.address}: all {len(order)} replica(s) "
            f"failed: {'; '.join(errors)}"
        ) from last_exc

    def _run_hedged(self, op, order: list[int]):
        """Primary + at most one hedge, plus failover on any failure.

        One launch per candidate at most; the first success wins and
        every other in-flight attempt is aborted (not a health event
        for the loser).  Failures launch the next candidate
        immediately; the hedge timer launches one speculative duplicate
        while the primary is merely *slow*.
        """
        from .rpc import RemoteShardError, RpcProtocolError

        pool = self._executor()
        inflight: dict = {}
        aborted: set[int] = set()
        errors: list[str] = []
        last_exc: Exception | None = None
        hedged_replica: int | None = None
        nxt = 0

        def launch() -> int:
            nonlocal nxt
            i = order[nxt]
            nxt += 1
            inflight[pool.submit(self._timed, i, op)] = i
            return i

        launch()
        hedge_at: float | None = time.monotonic() + self._hedge_delay()
        while inflight:
            timeout = None
            if hedge_at is not None and nxt < len(order):
                timeout = max(0.0, hedge_at - time.monotonic())
            done, _ = wait(
                list(inflight), timeout=timeout,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                # Hedge timer fired: one speculative duplicate, then
                # any further launches come from failures only.
                hedge_at = None
                with self._lock:
                    self.hedges += 1
                self._m_hedges.inc()
                hedged_replica = launch()
                continue
            for future in done:
                i = inflight.pop(future)
                try:
                    result, latency = future.result()
                except (RemoteShardError, RpcProtocolError, OSError) as exc:
                    if i in aborted:
                        continue  # our own cancellation, not a failure
                    self.health[i].record_failure()
                    errors.append(f"{self.replicas[i].address}: {exc}")
                    last_exc = exc
                    if nxt < len(order):
                        with self._lock:
                            self.failovers += 1
                        self._m_failovers.inc()
                        launch()
                    continue
                self.health[i].record_success(latency)
                if i == hedged_replica:
                    with self._lock:
                        self.hedge_wins += 1
                    self._m_hedge_wins.inc()
                for loser in inflight.values():
                    aborted.add(loser)
                    self.replicas[loser].abort()
                return result
        raise RemoteShardError(
            f"replica group {self.address}: all {nxt} attempt(s) failed: "
            f"{'; '.join(errors)}"
        ) from last_exc

    # -- requests -----------------------------------------------------------

    def _check_info(self, info):
        """Replicas must agree on the shard they serve — a replica with
        different rows would silently corrupt merges, so disagreement
        is a loud configuration error, not a failover."""
        if self._info is None:
            self._info = info
            return info
        known = self._info
        if (info.n, info.d, info.offset) != (known.n, known.d, known.offset):
            raise ValueError(
                f"replica group {self.address}: replicas disagree on the "
                f"shard: (n={info.n}, d={info.d}, offset={info.offset}) vs "
                f"(n={known.n}, d={known.d}, offset={known.offset})"
            )
        return info

    def info(self):
        return self._check_info(self._run(lambda shard: shard.info()))

    def ping(self) -> bool:
        return bool(self._run(lambda shard: shard.ping()))

    def search(self, queries_bits, k: int):
        return self._run(lambda shard: shard.search(queries_bits, k))

    def search_workload(self, queries_bits, workload_name: str, params: dict):
        return self._run(
            lambda shard: shard.search_workload(
                queries_bits, workload_name, params
            )
        )

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Drop every replica connection and release the executor.

        Reusable, like ``RemoteShard.close()`` — the pool calls it both
        to force fresh connections after a desync and at teardown; the
        executor is rebuilt lazily if the group serves again.
        """
        with self._lock:
            pool, self._executor_pool = self._executor_pool, None
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)
        for shard in self.replicas:
            shard.abort()  # unblock any in-flight loser immediately
            shard.close()
            shard._clear_abort()

    def __enter__(self) -> "ReplicaGroup":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
