"""Query batching / admission layer for concurrent search callers.

A board partition pass costs the same host work whether the streamed
batch holds one query or hundreds: every pass reconfigures (or
cache-loads) the board and walks the partition once.  A service facing
millions of small callers therefore wins by *coalescing* — admitting
concurrent ``search()`` calls into one merged query batch per partition
pass and splitting the merged top-k back per caller.  Per-query results
are computed independently end to end (per-row distances, per-row
top-k selection, per-row merge), so the split rows are **bit-identical**
to what each caller would have gotten alone — tie-breaks included.

:class:`BatchRouter` implements the layer over anything with a
``search(queries) -> result`` method whose result carries row-aligned
``indices``/``distances`` — both :class:`~repro.core.engine.
APSimilaritySearch` and :class:`~repro.core.multiboard.
MultiBoardSearch` qualify (each grows a ``batched()`` convenience
constructor).

Admission policy
----------------

* ``max_batch`` — a collection round closes once the merged batch
  reaches this many query rows.  A single caller bringing more rows
  than ``max_batch`` is never split: it runs as its own batch.
* ``max_wait_ms`` — how long the collector waits for more callers
  after the first request of a round arrives.  ``0`` coalesces only
  what is already queued (greedy drain, no added latency).
* ``max_pending`` — backpressure: the admission queue holds at most
  this many waiting requests; further ``search()`` calls **block** in
  the caller's thread until the collector drains the queue.  Overload
  therefore surfaces as latency at the edge instead of unbounded
  memory growth in the router.

``search()`` is thread-safe and blocking: callers get their own
result rows back (views into the batch result's arrays).  The router
is a context manager; :meth:`~BatchRouter.close` drains every admitted
request before returning, so no caller is ever left hanging.
"""

from __future__ import annotations

import queue
import threading
import time
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..perf import metrics as _metrics

__all__ = ["BatchRouter", "QueryBatcher", "BatchedResult", "BatchRouterStats"]


@dataclass
class BatchRouterStats:
    """Coalescing accounting: how well admission amortized passes."""

    calls: int = 0  # caller search() requests admitted
    batches: int = 0  # engine searches actually issued
    rows: int = 0  # total query rows routed
    max_batch_rows: int = 0  # largest merged batch seen

    @property
    def coalescing_ratio(self) -> float:
        """Mean callers per engine pass (1.0 = batching bought nothing)."""
        return self.calls / self.batches if self.batches else 0.0


@dataclass
class BatchedResult:
    """One caller's slice of a coalesced batch result.

    ``indices``/``distances`` are this caller's rows (views into the
    batch arrays).  ``counters`` is shared by every caller of the same
    batch — the physical pass ran once, so its event counts exist once;
    aggregate by unique object (``id``) when summing across calls.
    """

    indices: np.ndarray
    distances: np.ndarray
    k: int
    counters: Any
    execution: str
    batch_rows: int  # merged batch size this result was computed in
    batch_calls: int  # callers coalesced into that batch
    # Degradation accounting forwarded from searchers that report it
    # (the remote fan-out of repro.host.rpc): shards missing from the
    # batch this slice came out of.  Empty for local engines.
    failed_shards: tuple = ()
    # Replication accounting forwarded the same way: failovers/hedged
    # re-issues the batch this slice came out of needed (0 locally).
    failovers: int = 0
    hedges: int = 0
    # This caller's full workload-typed result slice, set when the
    # searcher exposes a ``split_result`` hook (the generic workload
    # engines): similarities, ragged hit counts, and any other
    # workload-specific fields live here; ``indices``/``distances``
    # above stay the common denominator every caller can rely on.
    result: Any = None

    @property
    def partial(self) -> bool:
        return bool(self.failed_shards)


@dataclass
class _Request:
    queries: np.ndarray
    admitted_at: float = 0.0  # perf_counter stamp at admission
    done: threading.Event = field(default_factory=threading.Event)
    result: BatchedResult | None = None
    error: BaseException | None = None


_CLOSE = object()  # sentinel: collector drains and exits


class BatchRouter:
    """Coalesce concurrent ``search()`` callers into merged engine passes.

    Parameters
    ----------
    searcher:
        Any object with ``search(queries_bits) -> result`` where the
        result has row-aligned ``indices``/``distances`` plus ``k``,
        ``counters``, and ``execution`` attributes.
    max_batch:
        Close a collection round at this many merged query rows.
    max_wait_ms:
        Linger after a round's first request before dispatching, giving
        concurrent callers time to coalesce.  ``0`` = drain-only.
    max_pending:
        Bound of the admission queue; full ⇒ ``search()`` blocks
        (backpressure at the caller).
    """

    def __init__(
        self,
        searcher: Any,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if max_wait_ms < 0:
            raise ValueError("max_wait_ms must be >= 0")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        self.searcher = searcher
        self.max_batch = int(max_batch)
        self.max_wait_ms = float(max_wait_ms)
        self.stats = BatchRouterStats()
        self._queue: queue.Queue = queue.Queue(maxsize=int(max_pending))
        self._closed = threading.Event()
        self._stats_lock = threading.Lock()
        # Registry children captured once; mutators are no-ops when the
        # process registry is disabled (zero-hot-path contract).
        reg = _metrics.get_registry()
        self._m_calls = reg.counter(
            "repro_router_requests_total",
            "Caller search() requests admitted by the batch router.",
        )
        self._m_batches = reg.counter(
            "repro_router_batches_total",
            "Merged engine passes the router actually issued.",
        )
        self._m_rows = reg.counter(
            "repro_router_rows_total", "Query rows routed through admission."
        )
        self._m_depth = reg.gauge(
            "repro_router_queue_depth",
            "Requests waiting in the admission queue.",
        )
        self._m_wait = reg.histogram(
            "repro_router_wait_seconds",
            "Admission-to-dispatch wait per caller request.",
        )
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-batch-router", daemon=True
        )
        self._collector.start()

    # -- caller side ------------------------------------------------------

    def search(self, queries_bits: np.ndarray) -> BatchedResult:
        """Admit one caller's query rows; block until its slice is ready.

        Backpressure: blocks while the admission queue is full.  Raises
        whatever the underlying engine raised for this caller's batch.
        """
        if self._closed.is_set():
            raise RuntimeError("BatchRouter is closed")
        queries_bits = np.asarray(queries_bits)
        if queries_bits.ndim == 1:
            queries_bits = queries_bits[None, :]
        # Admission-time validation: a malformed request must fail its
        # own caller here, not poison every innocent caller coalesced
        # into the same merged batch.  Checked against the searcher's
        # contract when it exposes one (both engines do).
        if queries_bits.ndim != 2:
            raise ValueError("queries must be a (q, d) array")
        d = getattr(self.searcher, "d", None)
        if d is not None:
            if queries_bits.shape[1] != d:
                raise ValueError(
                    f"queries have d={queries_bits.shape[1]}, searcher d={d}"
                )
            if not np.isin(queries_bits, (0, 1)).all():
                raise ValueError("queries must be binary (0/1)")
        req = _Request(queries=queries_bits, admitted_at=time.perf_counter())
        # Blocks when max_pending is reached (backpressure) — but in
        # bounded slices, so a caller racing close() against a full
        # queue with no collector left to drain it fails instead of
        # blocking forever.
        while True:
            try:
                self._queue.put(req, timeout=0.5)
                break
            except queue.Full:
                if self._closed.is_set() and not self._collector.is_alive():
                    raise RuntimeError(
                        "BatchRouter closed during admission"
                    ) from None
        self._m_depth.set(self._queue.qsize())
        # Liveness-aware wait: if close() raced this admission and the
        # collector is already gone, fail instead of hanging forever.
        while not req.done.wait(timeout=0.5):
            if self._closed.is_set() and not self._collector.is_alive():
                if not req.done.is_set():
                    req.error = RuntimeError(
                        "BatchRouter closed during admission"
                    )
                    req.done.set()
                break
        if req.error is not None:
            raise req.error
        assert req.result is not None
        return req.result

    # -- collector side ---------------------------------------------------

    def _collect_loop(self) -> None:
        while True:
            item = self._queue.get()
            if item is _CLOSE:
                return
            batch = [item]
            rows = item.queries.shape[0]
            deadline = time.monotonic() + self.max_wait_ms / 1000.0
            while rows < self.max_batch:
                timeout = deadline - time.monotonic()
                try:
                    nxt = (
                        self._queue.get_nowait()
                        if timeout <= 0
                        else self._queue.get(timeout=timeout)
                    )
                except queue.Empty:
                    break
                if nxt is _CLOSE:
                    # Dispatch what we have, then exit; close() already
                    # stopped admissions, so nothing can arrive after.
                    self._dispatch(batch, rows)
                    return
                batch.append(nxt)
                rows += nxt.queries.shape[0]
            self._dispatch(batch, rows)

    def _dispatch(self, batch: list[_Request], rows: int) -> None:
        try:
            self._m_depth.set(self._queue.qsize())
            if _metrics.get_registry().enabled:
                now = time.perf_counter()
                stage_hist = _metrics.stage_histogram().labels(stage="admission")
                for req in batch:
                    wait = now - req.admitted_at
                    self._m_wait.observe(wait)
                    stage_hist.observe(wait)
            merged = (
                batch[0].queries
                if len(batch) == 1
                else np.concatenate([r.queries for r in batch], axis=0)
            )
            result = self.searcher.search(merged)
            # One site feeds both accountings: the registry counters and
            # the ad-hoc BatchRouterStats move together, so the snapshot
            # and `router.stats` can never disagree.
            with self._stats_lock:
                self.stats.calls += len(batch)
                self.stats.batches += 1
                self.stats.rows += rows
                self.stats.max_batch_rows = max(self.stats.max_batch_rows, rows)
            self._m_calls.inc(len(batch))
            self._m_batches.inc()
            self._m_rows.inc(rows)
            # Searchers with workload-typed results (WorkloadSearch,
            # RemoteWorkloadSearch) expose split_result: slicing every
            # workload field is their job, not this router's.
            splitter = getattr(self.searcher, "split_result", None)
            common = dict(
                k=result.k,
                counters=result.counters,
                execution=result.execution,
                batch_rows=rows,
                batch_calls=len(batch),
                failed_shards=tuple(getattr(result, "failed_shards", ())),
                failovers=int(getattr(result, "failovers", 0)),
                hedges=int(getattr(result, "hedges", 0)),
            )
            lo = 0
            for req in batch:
                hi = lo + req.queries.shape[0]
                if splitter is not None:
                    sliced = splitter(result, lo, hi)
                    req.result = BatchedResult(
                        indices=sliced.indices,
                        distances=getattr(sliced, "distances", None),
                        result=sliced,
                        **common,
                    )
                else:
                    req.result = BatchedResult(
                        indices=result.indices[lo:hi],
                        distances=result.distances[lo:hi],
                        **common,
                    )
                lo = hi
        except BaseException as exc:  # engine failure fails the whole batch
            for req in batch:
                req.error = exc
        finally:
            for req in batch:
                req.done.set()

    # -- lifecycle --------------------------------------------------------

    def close(self) -> None:
        """Stop admissions, drain every pending request, join the collector.

        Idempotent.  Requests admitted before ``close()`` all complete;
        ``search()`` after (or during) close raises ``RuntimeError``.
        """
        if self._closed.is_set():
            return
        self._closed.set()
        self._queue.put(_CLOSE)
        self._collector.join()
        # The collector exited at the sentinel; anything it had not yet
        # pulled sits behind it only if callers raced close() — fail
        # them loudly rather than leaving their threads waiting forever.
        while True:
            try:
                leftover = self._queue.get_nowait()
            except queue.Empty:
                break
            if leftover is _CLOSE:
                continue
            leftover.error = RuntimeError("BatchRouter closed during admission")
            leftover.done.set()

    def __enter__(self) -> "BatchRouter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# The paper-facing name: the router IS the query batcher of the
# millions-of-users serving story.
QueryBatcher = BatchRouter
