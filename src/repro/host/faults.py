"""Deterministic fault injection for the shard rack (chaos tests).

Two injection points, both programmable at runtime and both inert in
production:

:class:`ChaosProxy`
    A TCP proxy in front of a real :class:`~repro.host.rpc.ShardServer`.
    The wire protocol is strict request/response over length-prefixed
    frames, so the proxy relays *frames*, not bytes — it knows exactly
    which reply belongs to which request and can fault "every Nth
    request" or "the next N requests" deterministically.  Faults:
    ``delay`` (slow replica), ``drop`` (close silently, mid-stream
    EOF), ``reset`` (RST via SO_LINGER-0), ``corrupt`` (flip a frame
    magic byte — the wire has no payload checksum, so header corruption
    is the variant a client deterministically detects and rejects),
    ``hang_after_header`` (send only the 16-byte frame
    header, then hold the socket open — the client blocks until its
    timeout, the worst failure mode for tail latency).  ``kill()``
    makes the proxied replica look like a dead host: the listener
    closes and every live connection is cut.

:class:`ServerFaultHook`
    In-process hook for :class:`~repro.host.rpc.ShardServer`
    (``fault_hook=``): consulted once per reply, it can delay, drop,
    reset, corrupt, or truncate-and-hold that reply *inside* the
    server — faults on the far side of the accept loop, where a proxy
    cannot reach (e.g. a request that was accepted and then stalls,
    for drain tests).

Both share :class:`FaultSpec` scheduling: ``times=N`` arms the fault
for the next N matching replies then auto-clears, ``every=K`` fires on
every Kth reply — intermittent slowness that EWMA-based primary
selection cannot simply route around, which is what makes hedging
measurable.  No randomness anywhere: chaos tests must replay.
"""

from __future__ import annotations

import socket
import struct
import threading
import time
from dataclasses import dataclass

from .rpc import _HEADER, MAX_PAYLOAD_BYTES, _recv_exact

__all__ = [
    "FaultSpec",
    "FaultAction",
    "ServerFaultHook",
    "ChaosProxy",
]

_LINGER_RST = struct.pack("ii", 1, 0)  # SO_LINGER(on, 0s) => RST on close


@dataclass(frozen=True)
class FaultSpec:
    """What to inject and when.

    ``mode`` is one of ``"delay"``, ``"drop"``, ``"reset"``,
    ``"corrupt"``, ``"hang_after_header"``.  ``every=K`` fires on every
    Kth matching reply (1-based), ``times=N`` disarms after N firings;
    both unset means every reply.
    """

    mode: str
    delay_s: float = 0.0
    every: int | None = None
    times: int | None = None
    after_bytes: int = _HEADER.size  # bytes sent before a hang
    hold_s: float = 30.0  # how long a hang keeps the socket open

    _MODES = ("delay", "drop", "reset", "corrupt", "hang_after_header")

    def __post_init__(self):
        if self.mode not in self._MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r} (one of {self._MODES})"
            )


@dataclass(frozen=True)
class FaultAction:
    """One concrete injection, applied to one reply frame."""

    spec: FaultSpec

    def apply(self, sock: socket.socket, frame: bytes) -> bool:
        """Inject into ``frame`` bound for ``sock``; False = close the
        connection afterwards (the contract of the server reply path)."""
        spec = self.spec
        if spec.delay_s:
            time.sleep(spec.delay_s)
        if spec.mode == "delay":
            sock.sendall(frame)
            return True
        if spec.mode == "drop":
            return False  # silent close: peer sees EOF mid-stream
        if spec.mode == "reset":
            try:
                sock.setsockopt(
                    socket.SOL_SOCKET, socket.SO_LINGER, _LINGER_RST
                )
            except OSError:
                pass
            return False  # close now sends RST, not FIN
        if spec.mode == "corrupt":
            # Flip a byte of the frame MAGIC: the wire has no payload
            # checksum, so flipping body bytes can silently corrupt
            # values that still parse — header corruption is the
            # variant every client deterministically detects (bad
            # magic -> RpcProtocolError -> poisoned connection),
            # exercising "answered garbage" distinct from "went away".
            frame = bytes([frame[0] ^ 0xFF]) + frame[1:]
            sock.sendall(frame)
            return True
        # hang_after_header: a partial reply, then a held-open socket —
        # the client can only escape via its own timeout.
        sock.sendall(frame[: spec.after_bytes])
        time.sleep(spec.hold_s)
        return False


class _FaultSchedule:
    """Shared every/times counting for both injection points."""

    def __init__(self):
        self._lock = threading.Lock()
        self._spec: FaultSpec | None = None
        self._seen = 0  # matching replies since arm()
        self._fired = 0

    def arm(self, spec: FaultSpec) -> None:
        with self._lock:
            self._spec = spec
            self._seen = 0
            self._fired = 0

    def disarm(self) -> None:
        with self._lock:
            self._spec = None

    @property
    def fired(self) -> int:
        with self._lock:
            return self._fired

    def next_action(self) -> FaultAction | None:
        with self._lock:
            spec = self._spec
            if spec is None:
                return None
            self._seen += 1
            if spec.every is not None and self._seen % spec.every != 0:
                return None
            self._fired += 1
            if spec.times is not None and self._fired >= spec.times:
                self._spec = None  # auto-disarm after the last firing
            return FaultAction(spec)


class ServerFaultHook(_FaultSchedule):
    """``ShardServer(fault_hook=...)``: per-reply in-process injection.

    Callable as the server expects — ``hook(msg_type)`` returns a
    :class:`FaultAction` or None.  ``match`` restricts injection to
    specific message types (e.g. only search replies, leaving the
    handshake healthy).
    """

    def __init__(self, spec: FaultSpec | None = None,
                 match: tuple[int, ...] | None = None):
        super().__init__()
        self.match = tuple(match) if match is not None else None
        if spec is not None:
            self.arm(spec)

    def __call__(self, msg_type: int) -> FaultAction | None:
        if self.match is not None and msg_type not in self.match:
            return None
        return self.next_action()


class ChaosProxy:
    """Frame-aware TCP chaos proxy in front of one shard server.

    Listens on ``(host, port)`` (port 0 = ephemeral), forwards each
    request frame to ``target`` and relays the reply, injecting the
    armed :class:`FaultSpec` per reply.  Strictly one request in
    flight per connection — exactly the protocol's own discipline — so
    fault scheduling is deterministic in request order.
    """

    def __init__(self, target: str, host: str = "127.0.0.1", port: int = 0):
        thost, sep, tport = target.rpartition(":")
        if not sep or not thost:
            raise ValueError(f"target must be 'host:port', got {target!r}")
        self.target = (thost, int(tport))
        self.schedule = _FaultSchedule()
        self.requests_proxied = 0
        self._lock = threading.Lock()
        self._closed = False
        self._conns: set[socket.socket] = set()
        self._listener = socket.create_server((host, port))
        self._listener.settimeout(0.2)  # bounded accept wait: close() is fast
        self.address = "{}:{}".format(*self._listener.getsockname()[:2])
        self._accept_thread = threading.Thread(
            target=self._accept_loop,
            name=f"chaos-proxy-{self.address}",
            daemon=True,
        )
        self._accept_thread.start()

    # -- fault control ------------------------------------------------------

    def set_fault(self, spec: FaultSpec) -> None:
        self.schedule.arm(spec)

    def clear_fault(self) -> None:
        self.schedule.disarm()

    @property
    def faults_fired(self) -> int:
        return self.schedule.fired

    # -- proxy machinery ----------------------------------------------------

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                client, _addr = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                return  # listener closed (kill/close)
            threading.Thread(
                target=self._serve_connection, args=(client,), daemon=True
            ).start()

    @staticmethod
    def _read_frame_bytes(sock: socket.socket) -> bytes:
        head = _recv_exact(sock, _HEADER.size)
        length = struct.unpack("!Q", head[8:16])[0]
        if length > MAX_PAYLOAD_BYTES:
            raise ConnectionError("oversized frame through proxy")
        return head + (_recv_exact(sock, length) if length else b"")

    def _serve_connection(self, client: socket.socket) -> None:
        try:
            upstream = socket.create_connection(self.target, timeout=10.0)
        except OSError:
            client.close()
            return
        upstream.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        with self._lock:
            if self._closed:
                client.close()
                upstream.close()
                return
            self._conns.update((client, upstream))
        try:
            while True:
                request = self._read_frame_bytes(client)
                upstream.sendall(request)
                reply = self._read_frame_bytes(upstream)
                with self._lock:
                    self.requests_proxied += 1
                action = self.schedule.next_action()
                if action is None:
                    client.sendall(reply)
                elif not action.apply(client, reply):
                    return
        except (ConnectionError, OSError):
            return  # either side gone: end of session
        finally:
            with self._lock:
                self._conns.discard(client)
                self._conns.discard(upstream)
            for sock in (client, upstream):
                try:
                    sock.close()
                except OSError:
                    pass

    # -- lifecycle ----------------------------------------------------------

    def kill(self) -> None:
        """Make the proxied replica look like a dead host: refuse new
        connections and cut every live one mid-whatever-it-was-doing."""
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
            self._conns.clear()
        for sock in conns:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                sock.close()
            except OSError:
                pass

    def close(self) -> None:
        self.kill()
        self._accept_thread.join(timeout=2.0)

    def __enter__(self) -> "ChaosProxy":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
