"""Host-side AP driver model with a simulated timeline (paper Fig. 1a).

The paper's software stack is *application → API interface → driver →
PCIe → device*, and its run-time model assumes "the host processing
program can operate concurrently (non-blocking API calls) with the AP
much like how a CUDA program offloads to GPUs" (Section IV-B).  This
module makes that assumption an explicit, analyzable object: a device
timeline onto which configuration and streaming operations are
scheduled, plus a host timeline for result decoding, with either
blocking or asynchronous submission semantics.

The driver does not re-simulate automata — callers attach the report
payloads (from the engine or the simulators); it accounts *time*:

* ``configure`` ops take the generation's reconfiguration latency;
* ``stream`` ops take ``symbols x cycle_time`` of device time;
* decode work takes ``reports x host_ns_per_report`` of host time;
* in ``async`` mode the host decodes batch *i* while the device
  executes batch *i+1*; in ``blocking`` mode every op is a barrier.

``timeline.makespan`` is then directly comparable across submission
policies — the quantity the pipelining ablation reports.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from ..ap.device import APDeviceSpec, GEN1

__all__ = ["OpKind", "SubmissionMode", "TimelineEntry", "Timeline", "APDriver"]


class OpKind(enum.Enum):
    CONFIGURE = "configure"
    STREAM = "stream"
    HOST_DECODE = "host-decode"


class SubmissionMode(enum.Enum):
    BLOCKING = "blocking"  # every call waits for completion
    ASYNC = "async"  # device queue + overlapped host decode


@dataclass(frozen=True)
class TimelineEntry:
    kind: OpKind
    label: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s


@dataclass
class Timeline:
    """Completed operations on the device and host lanes."""

    device: list[TimelineEntry] = field(default_factory=list)
    host: list[TimelineEntry] = field(default_factory=list)

    @property
    def makespan_s(self) -> float:
        ends = [e.end_s for e in self.device] + [e.end_s for e in self.host]
        return max(ends, default=0.0)

    @property
    def device_busy_s(self) -> float:
        return sum(e.duration_s for e in self.device)

    @property
    def host_busy_s(self) -> float:
        return sum(e.duration_s for e in self.host)

    @property
    def device_utilization(self) -> float:
        m = self.makespan_s
        return self.device_busy_s / m if m > 0 else 0.0

    def overlap_s(self) -> float:
        """Total time during which device and host work concurrently."""
        total = 0.0
        for d in self.device:
            for h in self.host:
                lo = max(d.start_s, h.start_s)
                hi = min(d.end_s, h.end_s)
                if hi > lo:
                    total += hi - lo
        return total

    @staticmethod
    def merged(timelines: list["Timeline"]) -> "Timeline":
        """Combine per-worker timelines into one (multi-lane) view.

        Entries keep their absolute times and are ordered by start, so
        ``makespan_s`` is the max over lanes while ``device_busy_s``
        sums across lanes — with ``w`` concurrent lanes the resulting
        ``device_utilization`` is an *aggregate* that can approach
        ``w``.
        """
        out = Timeline()
        for t in timelines:
            out.device.extend(t.device)
            out.host.extend(t.host)
        out.device.sort(key=lambda e: (e.start_s, e.end_s))
        out.host.sort(key=lambda e: (e.start_s, e.end_s))
        return out


class APDriver:
    """Simulated-time driver: submit configure/stream ops, decode on host."""

    def __init__(
        self,
        device: APDeviceSpec = GEN1,
        mode: SubmissionMode = SubmissionMode.ASYNC,
        host_ns_per_report: float = 2.0,
    ):
        self.device = device
        self.mode = mode
        self.host_ns_per_report = float(host_ns_per_report)
        self.timeline = Timeline()
        self._device_free_at = 0.0
        self._host_free_at = 0.0

    # -- submission ------------------------------------------------------

    def _device_op(self, kind: OpKind, label: str, duration_s: float,
                   not_before: float = 0.0) -> TimelineEntry:
        start = max(self._device_free_at, not_before)
        entry = TimelineEntry(kind, label, start, start + duration_s)
        self.timeline.device.append(entry)
        self._device_free_at = entry.end_s
        if self.mode is SubmissionMode.BLOCKING:
            # a blocking call keeps the host captive until completion
            self._host_free_at = max(self._host_free_at, entry.end_s)
        return entry

    def configure(self, label: str = "configure") -> TimelineEntry:
        """Load a board image (one reconfiguration latency)."""
        return self._device_op(
            OpKind.CONFIGURE, label, self.device.reconfiguration_latency_s
        )

    def stream(self, n_symbols: int, label: str = "stream") -> TimelineEntry:
        """Stream ``n_symbols`` through the configured image."""
        if n_symbols < 0:
            raise ValueError("symbol count must be non-negative")
        return self._device_op(
            OpKind.STREAM, label, n_symbols * self.device.cycle_time_s
        )

    def decode(self, n_reports: int, after: TimelineEntry,
               label: str = "decode") -> TimelineEntry:
        """Host-side result resolution for a completed stream op.

        In async mode this may overlap subsequent device ops; in
        blocking mode the host is already serialized behind the device.
        """
        if n_reports < 0:
            raise ValueError("report count must be non-negative")
        start = max(self._host_free_at, after.end_s)
        duration = n_reports * self.host_ns_per_report * 1e-9
        entry = TimelineEntry(OpKind.HOST_DECODE, label, start, start + duration)
        self.timeline.host.append(entry)
        self._host_free_at = entry.end_s
        return entry

    def synchronize(self) -> float:
        """Barrier: returns the time at which all submitted work is done."""
        t = max(self._device_free_at, self._host_free_at)
        self._device_free_at = self._host_free_at = t
        return t
