"""Pinned-worker runtime: persistent processes on a shared-memory
task-descriptor ring.

PR 4 took the *payloads* off the executor pipe (shared-memory
descriptors instead of pickled dataset slices), but every partition
task still pays :class:`~concurrent.futures.ProcessPoolExecutor`
submit/dispatch machinery — an internal work queue, a management
thread, a pipe write, a wakeup, a result pipe read — about 0.5 ms per
task observed, which dominates small/medium-work fan-outs.  This module
replaces that machinery with the standard serving-stack fix: **pinned
workers polling a shared-memory ring**, the same shape as an inference
server's request ring.

* :class:`PinnedWorkerPool` spawns ``n_workers`` long-lived worker
  processes once per pool lifetime.  Each worker is pinned to its own
  pair of SPSC rings inside one shared-memory control segment: a
  **submission ring** (parent produces, worker consumes) and a twin
  **completion ring** (worker produces, parent consumes), both
  ``depth`` fixed-size slots of a sequence-numbered header plus an
  inline payload area.
* Submission is a memcpy: the parent pickles the (tiny — under shm
  transport the heavy fields are :class:`~repro.host.shm.ShmArrayRef`
  descriptors, and store-backed datasets ship as
  :class:`~repro.core.dataset.DatasetSliceRef` path/window handles the
  worker attaches itself) task into the next free slot, publishes the
  slot's sequence number, and sets the worker's wake event — a
  semaphore post, no pipe, no executor thread.  Target: ≤100 µs
  per-task dispatch against the executor's ~0.5 ms.
* Results return through the completion ring the same way; a result
  too large for a slot **spills** to a dedicated shared-memory segment
  whose name rides in the slot header (the worker announces the name
  in its status block *before* creating the segment, so a worker
  killed mid-spill can never strand an anonymous segment).
* Workers execute tasks through the exact
  :func:`repro.host.parallel.execute_partition` entry the executor
  backends call — the PR 6 workload registry, the PR 4 artifact
  shuttle and shm transport all apply unchanged, so results are
  bit-identical to every other backend by construction.

Robustness: the parent stamps per-worker heartbeats and watches
sequence progress; a worker killed mid-task is detected (completion
stall + ``Process.is_alive()``), its ring is zeroed, its in-flight
tasks are requeued (bounded by ``task_retries``), its orphaned spill
segments are reclaimed via the status-block announcement, and a fresh
worker is spawned onto the same slots.  A task that *repeatedly* kills
workers raises :class:`RingWorkerCrashed` instead of looping.

Lifecycle mirrors the executor pools: :meth:`PinnedWorkerPool.shutdown`
has the ``Executor.shutdown(wait=, cancel_futures=)`` signature, so
:class:`~repro.host.parallel.ParallelConfig`'s persistent-pool
acquire/release, ``close()``, and ``weakref.finalize`` leak guard all
apply verbatim — a dropped config (or interpreter exit) stops the
workers and unlinks every segment: no ``/dev/shm`` residue, no exit
hangs.

Synchronization note: slot publication writes the payload and header
fields first and the sequence number last; consumers read the sequence
first.  CPython's per-opcode execution plus the semaphore post/wait on
every publish/consume pair (full memory barriers) make this safe on
the platforms the repo targets.
"""

from __future__ import annotations

import multiprocessing
import os
import pickle
import struct
import threading
import time
import weakref
from collections import deque
from dataclasses import dataclass
from typing import Any

from ..perf import metrics as _metrics
from .shm import (
    SHM_UNAVAILABLE_REASON,
    _attach_untracked,
    _new_segment_name,
    _shared_memory,
    shm_available,
)

try:  # the C module backing POSIX shared memory; absent only on Windows
    import _posixshmem
except ImportError:  # pragma: no cover
    _posixshmem = None

__all__ = [
    "PinnedWorkerPool",
    "RingRunReport",
    "RingUnavailableError",
    "RingBrokenError",
    "RingWorkerCrashed",
    "RING_DEPTH",
    "RING_SLOT_PAYLOAD",
]

#: Slots per ring (per worker, per direction).  The parent caps
#: in-flight tasks per worker below this, so the completion ring can
#: never overflow and workers never block on a full ring.
RING_DEPTH = 4
#: Inline payload bytes per slot.  Descriptor-sized tasks (the shm
#: transport's normal case) fit with room to spare; anything larger
#: spills to its own segment.
RING_SLOT_PAYLOAD = 1 << 16

# Parent-side cap on tasks in flight per worker: 2 keeps the next task
# hot in the ring while one executes (no pickup latency between tasks)
# without queueing deep enough to distort submit->start accounting.
_MAX_INFLIGHT = 2

_GLOBAL_HDR = 64  # [0:8) shutdown flag
_STATUS_STRIDE = 128  # per worker: [0:8) heartbeat, [8:72) spill announce
_SLOT_HDR = 128  # seq / length / flags / spill name / timestamp
_NAME_BYTES = 64
# Slot header after the sequence word: payload length, flags, spill
# segment name, monotonic timestamp (submit time going out, task start
# time coming back — CLOCK_MONOTONIC is system-wide on every supported
# platform, so the parent can subtract across the process boundary).
_HDR_FMT = "<QQ64sd"
_FLAG_SPILLED = 1


class RingUnavailableError(OSError):
    """The ring cannot exist here (no usable shared memory).  An
    ``OSError`` so :class:`~repro.host.parallel.ParallelConfig`'s
    pool-creation fallback treats it like any other pool failure."""


class RingBrokenError(RuntimeError):
    """The pool is closed or in an unrecoverable state; the parallel
    layer discards it (and respawns or falls back serial)."""


class RingWorkerCrashed(RingBrokenError):
    """A task killed its pinned worker more times than ``task_retries``
    allows — respawn-and-resubmit gave up."""


@dataclass(frozen=True)
class _Geometry:
    """Byte layout of the control segment."""

    n_workers: int
    depth: int
    payload: int

    @property
    def slot_size(self) -> int:
        return _SLOT_HDR + self.payload

    @property
    def rings_base(self) -> int:
        return _GLOBAL_HDR + self.n_workers * _STATUS_STRIDE

    def status(self, w: int) -> int:
        return _GLOBAL_HDR + w * _STATUS_STRIDE

    def worker_base(self, w: int) -> int:
        return self.rings_base + w * 2 * self.depth * self.slot_size

    def submit(self, w: int, ticket: int) -> int:
        return self.worker_base(w) + (ticket % self.depth) * self.slot_size

    def completion(self, w: int, ticket: int) -> int:
        return self.worker_base(w) + (
            self.depth + ticket % self.depth
        ) * self.slot_size

    @property
    def total_bytes(self) -> int:
        return self.rings_base + self.n_workers * 2 * self.depth * self.slot_size


# -- slot IO (shared by parent and workers) ---------------------------------


def _publish(buf, off: int, ticket: int, payload: bytes, length: int,
             flags: int, name: bytes, ts: float) -> None:
    """Write a slot: payload and header fields first, sequence last."""
    if payload:
        buf[off + _SLOT_HDR : off + _SLOT_HDR + len(payload)] = payload
    struct.pack_into(_HDR_FMT, buf, off + 8, length, flags, name, ts)
    struct.pack_into("<Q", buf, off, ticket + 1)


def _peek(buf, off: int, ticket: int):
    """Header of slot ``off`` if ticket ``ticket`` is published there."""
    (seq,) = struct.unpack_from("<Q", buf, off)
    if seq != ticket + 1:
        return None
    length, flags, name_b, ts = struct.unpack_from(_HDR_FMT, buf, off + 8)
    name = name_b.split(b"\0", 1)[0].decode("ascii")
    return int(length), int(flags), name, float(ts)


def _read_payload(buf, off: int, length: int, flags: int, name: str) -> bytes:
    """Copy a slot's payload out — inline bytes or the spill segment."""
    if flags & _FLAG_SPILLED:
        seg = _attach_untracked(name)
        try:
            return bytes(seg.buf[:length])
        finally:
            seg.close()
    base = off + _SLOT_HDR
    return bytes(buf[base : base + length])


def _unlink_quiet(name: str) -> None:
    """Unlink a segment by name without resource-tracker side effects.

    The parent reclaims worker-created spill segments (and a dead
    worker's announced orphans); going through
    ``SharedMemory.unlink`` would send an UNREGISTER for a name this
    process never registered (tracker noise, gh-82300 territory), so
    on POSIX the raw ``shm_unlink`` is used directly.  Windows has no
    unlink — named segments vanish with their last handle.
    """
    if not name:
        return
    if _posixshmem is not None:
        try:
            _posixshmem.shm_unlink("/" + name)
        except (FileNotFoundError, OSError):
            pass


def _untrack(seg) -> None:
    """Drop a freshly *created* segment from this process's resource
    tracker: the parent (not the creating worker) owns the unlink, and
    a tracked name would make the worker's tracker warn-and-unlink a
    segment the parent still needs at worker exit."""
    try:
        from multiprocessing import resource_tracker

        resource_tracker.unregister(seg._name, "shared_memory")
    except Exception:
        pass


# -- worker ------------------------------------------------------------------


def _pinned_worker_main(control_name: str, worker_id: int, n_workers: int,
                        depth: int, payload_cap: int, submit_sem,
                        completion_sem, parent_pid: int) -> None:
    """One pinned worker: drain the submission ring forever.

    Every task executes through
    :func:`repro.host.parallel.execute_partition` — the same workload-
    registry entry the executor backends call — so pinned results are
    bit-identical to process/thread/serial by construction.  Exceptions
    (including a task's own failure) ship back through the completion
    ring instead of killing the worker.
    """
    geo = _Geometry(n_workers, depth, payload_cap)
    control = _attach_untracked(control_name)
    buf = control.buf
    status = geo.status(worker_id)
    ticket = 0
    heartbeat = 0

    def _beat() -> None:
        nonlocal heartbeat
        heartbeat += 1
        struct.pack_into("<Q", buf, status, heartbeat)

    try:
        while True:
            # Scan-then-wait over a counting semaphore: a token posted
            # after the scan makes the acquire below return at once, so
            # a wakeup can never be lost; surplus tokens only cost a
            # spurious rescan.  (Semaphores, not Events: sem_post has
            # no sleeper handshake, so a worker SIGKILLed mid-wait can
            # never wedge the poster — see the parent-side note.)
            progressed = False
            while True:
                (shutdown,) = struct.unpack_from("<Q", buf, 0)
                if shutdown:
                    return
                off = geo.submit(worker_id, ticket)
                hdr = _peek(buf, off, ticket)
                if hdr is None:
                    break
                length, flags, name, _t_sub = hdr
                t_start = time.monotonic()
                _beat()
                try:
                    blob = _read_payload(buf, off, length, flags, name)
                    from .parallel import execute_partition

                    task, queries = pickle.loads(blob)
                    result: Any = execute_partition(task, queries, None)
                    ok = True
                except BaseException as exc:  # ship the failure, keep serving
                    result, ok = exc, False
                try:
                    out = pickle.dumps(
                        (ok, result), protocol=pickle.HIGHEST_PROTOCOL
                    )
                except Exception as exc:
                    out = pickle.dumps(
                        (False,
                         RuntimeError(f"unpicklable pinned-worker result: {exc!r}")),
                        protocol=pickle.HIGHEST_PROTOCOL,
                    )
                coff = geo.completion(worker_id, ticket)
                if len(out) > payload_cap:
                    # Announce the name BEFORE creating the segment: if
                    # this worker dies mid-spill the parent reclaims the
                    # orphan from the status block on respawn.
                    sname = _new_segment_name()
                    struct.pack_into(
                        "<64s", buf, status + 8, sname.encode("ascii")
                    )
                    seg = _shared_memory.SharedMemory(
                        name=sname, create=True, size=len(out)
                    )
                    _untrack(seg)
                    seg.buf[: len(out)] = out
                    seg.close()
                    _publish(buf, coff, ticket, b"", len(out), _FLAG_SPILLED,
                             sname.encode("ascii"), t_start)
                else:
                    _publish(buf, coff, ticket, out, len(out), 0, b"", t_start)
                completion_sem.release()
                _beat()
                ticket += 1
                progressed = True
            if not progressed:
                if not submit_sem.acquire(True, 0.1):
                    try:
                        if os.getppid() != parent_pid:
                            return  # orphaned: parent died without close()
                    except OSError:  # pragma: no cover
                        return
    finally:
        try:
            control.close()
        except (BufferError, OSError):  # pragma: no cover
            pass


# -- parent ------------------------------------------------------------------


@dataclass
class _Inflight:
    """Parent-side record of one submitted ticket."""

    task_index: int
    t_submit: float
    spill: Any = None  # parent-created SharedMemory for oversized tasks


@dataclass
class RingRunReport:
    """What one :meth:`PinnedWorkerPool.run_tasks` batch actually did.

    ``results`` and ``dispatch_latencies_s`` are in input-task order;
    a latency is worker pickup time minus parent submit time (the ring
    analogue of executor submit→start).  ``max_queue_depth`` is the
    peak number of tasks in flight across all rings.
    """

    results: list
    dispatch_latencies_s: list
    max_queue_depth: int
    respawns: int


def _teardown(control, procs, submit_sems, live_spills, geo) -> None:
    """Shutdown/finalizer target (must not reference the pool): stop
    the workers, then reclaim every segment the ring ever touched —
    announced orphans, unconsumed result spills, parent-side task
    spills, and the control segment itself.  Tolerates double calls
    and already-dead workers."""
    try:
        struct.pack_into("<Q", control.buf, 0, 1)  # shutdown flag
    except (ValueError, OSError, struct.error):
        pass
    for sem in submit_sems:
        try:
            sem.release()
        except Exception:
            pass
    for p in procs:
        if p is None:
            continue
        try:
            p.join(timeout=2.0)
        except Exception:
            pass
    for p in procs:
        if p is None:
            continue
        try:
            if p.is_alive():
                p.kill()
                p.join(timeout=1.0)
        except Exception:
            pass
    # Workers are gone: sweep the rings for spill names they own(ed).
    try:
        buf = control.buf
        for w in range(geo.n_workers):
            announce = struct.unpack_from("<64s", buf, geo.status(w) + 8)[0]
            announce = announce.split(b"\0", 1)[0]
            if announce:
                _unlink_quiet(announce.decode("ascii", "ignore"))
            for s in range(geo.depth):
                coff = geo.completion(w, s)
                (seq,) = struct.unpack_from("<Q", buf, coff)
                if not seq:
                    continue
                _length, flags, name_b, _ts = struct.unpack_from(
                    _HDR_FMT, buf, coff + 8
                )
                if flags & _FLAG_SPILLED:
                    # Already-consumed spills are unlinked (names are
                    # never reused, so a stale header cannot hit a
                    # live segment); _unlink_quiet ignores ENOENT.
                    _unlink_quiet(
                        name_b.split(b"\0", 1)[0].decode("ascii", "ignore")
                    )
    except (ValueError, OSError, struct.error):
        pass
    for seg in list(live_spills.values()):
        try:
            seg.unlink()
        except (FileNotFoundError, OSError):
            pass
        try:
            seg.close()
        except (BufferError, OSError):
            pass
    live_spills.clear()
    try:
        control.unlink()
    except (FileNotFoundError, OSError):
        pass
    try:
        control.close()
    except (BufferError, OSError):
        pass


class PinnedWorkerPool:
    """N pinned worker processes behind shared-memory task rings.

    Duck-types the slice of the :class:`~concurrent.futures.Executor`
    lifecycle the parallel layer uses (``shutdown(wait=,
    cancel_futures=)``), so :class:`~repro.host.parallel.
    ParallelConfig`'s persistent-pool machinery — lazy spawn, reuse,
    ``close()``, the ``weakref.finalize`` leak guard — applies
    unchanged.  Work goes through :meth:`run_tasks` (batch-in,
    batch-out) rather than per-task futures: the whole point is that
    submission is a slot memcpy plus a semaphore post.

    ``task_retries`` bounds respawn-and-resubmit per task when a
    worker dies mid-task; beyond it :class:`RingWorkerCrashed` is
    raised.  ``mp_context`` defaults to the platform's default
    multiprocessing context (the same one ``ProcessPoolExecutor``
    uses).
    """

    def __init__(self, n_workers: int, *, depth: int = RING_DEPTH,
                 slot_payload_bytes: int = RING_SLOT_PAYLOAD,
                 task_retries: int = 1, poll_timeout_s: float = 0.25,
                 mp_context=None):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        if depth < 1:
            raise ValueError("depth must be >= 1")
        if slot_payload_bytes < 1024:
            raise ValueError("slot_payload_bytes must be >= 1024")
        if task_retries < 0:
            raise ValueError("task_retries must be >= 0")
        if not shm_available():
            raise RingUnavailableError(SHM_UNAVAILABLE_REASON)
        self.n_workers = int(n_workers)
        self.task_retries = int(task_retries)
        self._poll_timeout = float(poll_timeout_s)
        self._geo = _Geometry(self.n_workers, int(depth), int(slot_payload_bytes))
        self._inflight_cap = min(_MAX_INFLIGHT, int(depth))
        self._ctx = mp_context if mp_context is not None else multiprocessing.get_context()
        try:
            self._control = _shared_memory.SharedMemory(
                name=_new_segment_name(), create=True, size=self._geo.total_bytes
            )
        except (OSError, ValueError) as exc:
            raise RingUnavailableError(
                f"cannot create ring control segment: {exc}"
            ) from exc
        # Wake primitives are counting semaphores, NOT Events: an
        # Event.set() must handshake with every recorded sleeper
        # (Condition.notify blocks on _woken_count), so a worker
        # SIGKILLed while parked in Event.wait() leaves a stale
        # sleeper count that deadlocks the next set() — with the
        # condition lock held, which also wedges the respawned
        # worker.  sem_post never blocks and a killed waiter leaves
        # no state behind; surplus tokens just cause a spare ring
        # scan.
        self._submit_sems = [
            self._ctx.Semaphore(0) for _ in range(self.n_workers)
        ]
        self._completion_sem = self._ctx.Semaphore(0)
        self._procs: list = [None] * self.n_workers
        self._next_ticket = [0] * self.n_workers
        self._next_completion = [0] * self.n_workers
        self._inflight: list[dict[int, _Inflight]] = [
            {} for _ in range(self.n_workers)
        ]
        self._live_spills: dict[str, Any] = {}
        self._respawns = 0
        # Register the ring's metric families eagerly so the process
        # catalog (and the CI metrics-contract baseline) is complete
        # the moment a pool exists — a respawn or run only mutates.
        reg = _metrics.get_registry()
        self._m_respawns = reg.counter(
            "repro_ring_respawns_total",
            "Pinned workers respawned after dying.",
        )
        self._m_occupancy = reg.histogram(
            "repro_ring_occupancy",
            "Peak in-flight descriptor-slot occupancy per ring run.",
            buckets=tuple(float(2 ** i) for i in range(9)),
        )
        self._closed = False
        self._broken = False
        self._run_lock = threading.Lock()
        # Leak guard: a pool dropped (or an interpreter exiting)
        # without shutdown() still stops its workers and unlinks every
        # segment.  The target must not reference `self`.
        self._finalizer = weakref.finalize(
            self, _teardown, self._control, self._procs,
            self._submit_sems, self._live_spills, self._geo,
        )
        try:
            for w in range(self.n_workers):
                self._spawn_worker(w)
        except BaseException:
            self.shutdown(wait=False)
            raise

    # -- lifecycle --------------------------------------------------------

    def _spawn_worker(self, w: int) -> None:
        proc = self._ctx.Process(
            target=_pinned_worker_main,
            args=(self._control.name, w, self.n_workers, self._geo.depth,
                  self._geo.payload, self._submit_sems[w],
                  self._completion_sem, os.getpid()),
            name=f"repro-pinned-{w}",
            daemon=True,
        )
        proc.start()
        self._procs[w] = proc

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def respawns(self) -> int:
        """Workers respawned after dying (observability + tests)."""
        return self._respawns

    def worker_pids(self) -> list:
        return [p.pid for p in self._procs if p is not None]

    def heartbeats(self) -> list:
        """Per-worker progress counters (bumped at task pickup and
        completion) — the ring's stall-detection signal."""
        buf = self._control.buf
        return [
            struct.unpack_from("<Q", buf, self._geo.status(w))[0]
            for w in range(self.n_workers)
        ]

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Executor-compatible teardown (idempotent): stop workers and
        unlink every segment.  ``cancel_futures`` is accepted for
        signature compatibility — undelivered ring tasks simply die
        with their rings."""
        if self._closed:
            return
        self._closed = True
        self._finalizer.detach()
        _teardown(self._control, self._procs, self._submit_sems,
                  self._live_spills, self._geo)

    def __enter__(self) -> "PinnedWorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.shutdown()

    # -- submission / completion ------------------------------------------

    def _submit(self, w: int, task_index: int, tasks, queries_arg) -> None:
        ticket = self._next_ticket[w]
        t_sub = time.monotonic()
        blob = pickle.dumps(
            (tasks[task_index], queries_arg), protocol=pickle.HIGHEST_PROTOCOL
        )
        off = self._geo.submit(w, ticket)
        buf = self._control.buf
        rec = _Inflight(task_index, t_sub)
        if len(blob) <= self._geo.payload:
            _publish(buf, off, ticket, blob, len(blob), 0, b"", t_sub)
        else:
            name = _new_segment_name()
            seg = _shared_memory.SharedMemory(
                name=name, create=True, size=len(blob)
            )
            seg.buf[: len(blob)] = blob
            rec.spill = seg
            self._live_spills[name] = seg
            _publish(buf, off, ticket, b"", len(blob), _FLAG_SPILLED,
                     name.encode("ascii"), t_sub)
        self._inflight[w][ticket] = rec
        self._next_ticket[w] = ticket + 1
        self._submit_sems[w].release()

    def _release_spill(self, rec: _Inflight) -> None:
        if rec.spill is None:
            return
        self._live_spills.pop(rec.spill.name, None)
        try:
            rec.spill.unlink()
        except (FileNotFoundError, OSError):
            pass
        try:
            rec.spill.close()
        except (BufferError, OSError):
            pass
        rec.spill = None

    def _drain(self) -> list:
        """Consume every published completion across all rings."""
        buf = self._control.buf
        out = []
        for w in range(self.n_workers):
            while True:
                ticket = self._next_completion[w]
                coff = self._geo.completion(w, ticket)
                hdr = _peek(buf, coff, ticket)
                if hdr is None:
                    break
                length, flags, name, t_start = hdr
                blob = _read_payload(buf, coff, length, flags, name)
                if flags & _FLAG_SPILLED:
                    _unlink_quiet(name)
                self._next_completion[w] = ticket + 1
                ok, value = pickle.loads(blob)
                out.append((w, ticket, t_start, ok, value))
        return out

    # -- crash recovery ----------------------------------------------------

    def _reset_worker(self, w: int) -> None:
        """Zero a dead worker's rings and status, reclaim its announced
        orphan spill, and spawn a replacement onto the same slots."""
        buf = self._control.buf
        status = self._geo.status(w)
        announce = struct.unpack_from("<64s", buf, status + 8)[0].split(b"\0", 1)[0]
        if announce:
            _unlink_quiet(announce.decode("ascii", "ignore"))
        struct.pack_into("<64s", buf, status + 8, b"")
        struct.pack_into("<Q", buf, status, 0)
        base = self._geo.worker_base(w)
        for s in range(2 * self._geo.depth):
            struct.pack_into("<Q", buf, base + s * self._geo.slot_size, 0)
        for rec in self._inflight[w].values():
            self._release_spill(rec)
        self._inflight[w] = {}
        self._next_ticket[w] = 0
        self._next_completion[w] = 0
        while self._submit_sems[w].acquire(False):
            pass  # drop tokens the dead worker never consumed
        old = self._procs[w]
        if old is not None:
            try:
                old.join(timeout=0.1)
            except Exception:
                pass
        self._spawn_worker(w)
        # One increment site feeds both the `respawns` property and the
        # registry counter — they cannot drift apart.
        self._respawns += 1
        self._m_respawns.inc()

    def _recover_worker(self, w: int, pending: deque,
                        crash_counts: dict) -> int:
        """A worker died mid-run: requeue its in-flight tasks (front of
        the queue, bounded by ``task_retries`` per task) and respawn.
        Returns the number of tasks reclaimed."""
        lost = [
            rec.task_index for _t, rec in sorted(self._inflight[w].items())
        ]
        for ti in lost:
            crash_counts[ti] = crash_counts.get(ti, 0) + 1
            if crash_counts[ti] > self.task_retries:
                self._broken = True
                raise RingWorkerCrashed(
                    f"pinned worker died {crash_counts[ti]} time(s) while "
                    f"executing task {ti} (task_retries={self.task_retries})"
                )
        self._reset_worker(w)
        for ti in reversed(lost):
            pending.appendleft(ti)
        return len(lost)

    # -- the batch entry ---------------------------------------------------

    def run_tasks(self, tasks: list, queries_arg) -> RingRunReport:
        """Execute ``tasks`` across the pinned workers.

        Results come back in input order.  A worker-side task exception
        re-raises here after outstanding work drains (matching
        ``Future.result()`` semantics on the executor path); a worker
        killed mid-task triggers respawn-and-resubmit, and
        :class:`RingWorkerCrashed` only if one task keeps killing its
        workers.
        """
        with self._run_lock:
            if self._closed or self._broken:
                raise RingBrokenError("pinned worker pool is closed or broken")
            if not tasks:
                return RingRunReport([], [], 0, 0)
            respawns_before = self._respawns
            for w in range(self.n_workers):
                # Heal workers that died while the pool sat idle:
                # nothing was in flight, so a plain reset suffices.
                if not self._procs[w].is_alive():
                    self._reset_worker(w)
            n = len(tasks)
            results: list = [None] * n
            latencies: list = [None] * n
            pending: deque = deque(range(n))
            crash_counts: dict[int, int] = {}
            done = 0
            outstanding = 0
            max_depth = 0
            error: BaseException | None = None

            def _consume(events) -> None:
                nonlocal done, outstanding, error
                for w, ticket, t_start, ok, value in events:
                    rec = self._inflight[w].pop(ticket)
                    self._release_spill(rec)
                    outstanding -= 1
                    done += 1
                    if ok:
                        results[rec.task_index] = value
                        latencies[rec.task_index] = max(
                            0.0, t_start - rec.t_submit
                        )
                    elif error is None:
                        error = value

            while True:
                if error is None:
                    while pending:
                        free = [
                            w for w in range(self.n_workers)
                            if len(self._inflight[w]) < self._inflight_cap
                        ]
                        if not free:
                            break
                        w = min(free, key=lambda i: len(self._inflight[i]))
                        self._submit(w, pending.popleft(), tasks, queries_arg)
                        outstanding += 1
                        max_depth = max(max_depth, outstanding)
                if (error is None and done >= n) or (
                    error is not None and outstanding == 0
                ):
                    break
                # Drain-then-wait: each completion posts one token
                # after publishing, so a completion landing between
                # the drain and the acquire wakes it immediately —
                # wakeups cannot be lost, and stale tokens only cost
                # one empty drain pass.
                events = self._drain()
                if events:
                    _consume(events)
                    continue
                if self._completion_sem.acquire(True, self._poll_timeout):
                    continue
                dead = [
                    w for w in range(self.n_workers)
                    if not self._procs[w].is_alive()
                ]
                if not dead:
                    continue
                _consume(self._drain())  # anything published before death
                for w in dead:
                    outstanding -= self._recover_worker(
                        w, pending, crash_counts
                    )
            if error is not None:
                raise error
            self._m_occupancy.observe(max_depth)
            return RingRunReport(
                results=results,
                dispatch_latencies_s=latencies,
                max_queue_depth=max_depth,
                respawns=self._respawns - respawns_before,
            )
