"""Network-transparent shard service: rack-scale fan-out over TCP.

PR 3 scaled the search across local boards and PR 4 put an admission
layer in front of it; this module drives the same offset-aware merge
across *remote hosts*.  A rack deployment runs one :class:`ShardServer`
per host — each owning a private engine over its local dataset shard,
with its own :class:`~repro.ap.compiler.BoardImageCache`,
:class:`~repro.host.parallel.ParallelConfig` and shared-memory
transport — while the front door fans a query batch out to all of them
concurrently through a :class:`RemoteShardPool` and merges the replies
in one :func:`~repro.util.topk.merge_topk_blocks` pass.  Results are
**bit-identical** to a single local engine over the concatenated
dataset: every shard computes its exact local top-k with the
library-wide (distance, index) tie-break, indices re-base to global IDs
during the merge, and pad rows stay pads.

Wire protocol (v1)
------------------

A deliberately boring length-prefixed binary protocol over TCP —
stdlib ``socket``/``socketserver`` plus ``struct``, **no pickle ever
crosses the network**.  Each frame is::

    !4s B  B  H  Q        16-byte header
     |  |  |  |  +-- payload length (bounded by MAX_PAYLOAD_BYTES)
     |  |  |  +----- reserved (0)
     |  |  +-------- message type
     |  +----------- protocol version (PROTOCOL_VERSION)
     +-------------- magic b"APRS"

followed by ``payload length`` bytes.  ndarray payloads travel as
``dtype-code, ndim, dims..., raw C-order bytes`` with a whitelist of
dtypes (uint8 queries, int64 indices/distances, float64 similarity
scores) — a malicious or corrupt peer can at worst make a request fail
validation; nothing on the wire is executable and allocations are
bounded before they happen.

Beyond the kNN request (``MSG_SEARCH_REQ``), any workload registered
with :mod:`repro.core.workload` is servable over the same framing:
``MSG_WL_SEARCH_REQ`` names the workload and carries its parameters as
canonical JSON, the reply is the workload's ``pack``\\ ed wire fields,
and :class:`RemoteWorkloadSearch` fans out/merges through the
workload's own associative ``merge`` — shard servers pre-merge their
local partitions, the pool merges across shards.  Servers can restrict
what they serve with ``workloads=`` (the CLI's ``repro serve
--workload``); the legacy kNN wire counts as the ``"knn"`` workload for
admission purposes.

Failure semantics
-----------------

Per-shard timeouts and bounded retries (with reconnect — a timed-out
connection may have a stale reply in flight, so it is never reused;
reconnects back off exponentially with jitter so a dead host is not
hammered).  When ``allow_partial=True`` (default) a batch whose
shard(s) failed still returns: the merge covers the shards that
answered, the result's ``failed_shards`` names the ones that did not,
and ``partial`` flags it — the top-k over the answering shards is
still exact for those shards by the same merge argument.
``allow_partial=False`` turns any shard failure into a raised
:class:`RemoteShardError`.

Availability (PR 9): each pool slot is a
:class:`~repro.host.replication.ReplicaGroup` — one or more
``RemoteShard`` replicas serving the *same* shard index, written as
``host:port|host:port`` in the address list.  The group picks a
primary by tracked health (EWMA latency + a consecutive-failure
circuit breaker with half-open probing), fails over to the next
replica on error instead of degrading the batch to ``partial``, and
hedges slow requests (a speculative duplicate to a second replica
after a p95-based delay; first complete answer wins, the loser's
connection is aborted).  ``failed_shards`` now names whole groups: a
slot only degrades when every replica in it failed.
:meth:`ShardServer.drain` plus the CLI's SIGTERM handler give rolling
restarts a graceful exit — stop accepting, finish in-flight requests
(bounded), then close — so a replica can be replaced under traffic
and rejoin warm via ``cache_dir``.

:class:`RemoteMultiBoardSearch` wraps the pool in the same
``search()``/``batched()`` surface as
:class:`~repro.core.multiboard.MultiBoardSearch`, so the PR 4
:class:`~repro.host.batching.BatchRouter` composes unchanged in front
of a rack of remote shards.
"""

from __future__ import annotations

import json
import random
import socket
import socketserver
import struct
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, replace

import numpy as np

from ..perf import metrics as _metrics

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_PAYLOAD_BYTES",
    "RpcProtocolError",
    "RemoteShardError",
    "ShardInfo",
    "ShardServer",
    "RemoteShard",
    "RemoteShardPool",
    "RemoteMultiBoardSearch",
    "RemoteWorkloadSearch",
    "serve_shard",
]

PROTOCOL_VERSION = 1
MAGIC = b"APRS"
_HEADER = struct.Struct("!4sBBHQ")

# Hard ceiling on a single frame's payload: enough for ~100M int64
# result cells, small enough that a corrupt length field cannot make
# either side attempt a multi-gigabyte allocation.
MAX_PAYLOAD_BYTES = 1 << 28

# -- message types ---------------------------------------------------------

MSG_INFO_REQ = 0x01
MSG_INFO = 0x02
MSG_SEARCH_REQ = 0x03
MSG_SEARCH = 0x04
MSG_PING = 0x05
MSG_PONG = 0x06
MSG_WL_SEARCH_REQ = 0x07
MSG_WL_SEARCH = 0x08
MSG_ERROR = 0x7F

# Wire dtype whitelist: nothing else deserializes.  uint8 queries,
# int64 indices/distances/counts, float64 similarity scores (the
# Jaccard workload) — still no object/structured dtypes, ever.
_DTYPE_CODES = {"|u1": 1, "<i8": 2, "<f8": 3}
_CODE_DTYPES = {
    1: np.dtype(np.uint8),
    2: np.dtype(np.int64),
    3: np.dtype(np.float64),
}

_INFO = struct.Struct("!QQQQ")  # n, d, offset, n_partitions
_SEARCH_REQ = struct.Struct("!Q")  # k
# counters: configurations, symbols_streamed, reports_received,
# report_payload_bits, image_cache_hits; then execution-string length
_SEARCH_HEAD = struct.Struct("!QQQQQB")
_ARRAY_HEAD = struct.Struct("!BB")  # dtype code, ndim
# workload request: name length (u8), params-JSON length (u32);
# the name, the params, and the packed query array follow
_WL_REQ_HEAD = struct.Struct("!BI")


class RpcProtocolError(ValueError):
    """A frame violated the wire protocol (bad magic/version/shape/size)."""


class RemoteShardError(RuntimeError):
    """A remote shard could not serve a request (after retries)."""


# -- codec -----------------------------------------------------------------


def pack_frame(msg_type: int, payload: bytes = b"") -> bytes:
    if len(payload) > MAX_PAYLOAD_BYTES:
        raise RpcProtocolError(
            f"payload of {len(payload)} bytes exceeds MAX_PAYLOAD_BYTES"
        )
    return _HEADER.pack(MAGIC, PROTOCOL_VERSION, msg_type, 0, len(payload)) + payload


def pack_array(arr: np.ndarray) -> bytes:
    """``dtype-code, ndim, dims..., raw bytes`` for a whitelisted array."""
    arr = np.ascontiguousarray(arr)
    code = _DTYPE_CODES.get(arr.dtype.str)
    if code is None:
        raise RpcProtocolError(f"dtype {arr.dtype} is not wire-encodable")
    if arr.ndim > 2:
        raise RpcProtocolError("only 1-D/2-D arrays travel on the wire")
    head = _ARRAY_HEAD.pack(code, arr.ndim)
    dims = struct.pack(f"!{arr.ndim}Q", *arr.shape)
    return head + dims + arr.tobytes()


def unpack_array(payload: bytes, offset: int = 0) -> tuple[np.ndarray, int]:
    """Decode one packed array; returns ``(array, next_offset)``.

    Validation happens *before* allocation: dtype must be whitelisted,
    ndim <= 2, and the declared element count must fit the remaining
    payload exactly where it is the final field.
    """
    if len(payload) - offset < _ARRAY_HEAD.size:
        raise RpcProtocolError("truncated array header")
    code, ndim = _ARRAY_HEAD.unpack_from(payload, offset)
    dtype = _CODE_DTYPES.get(code)
    if dtype is None:
        raise RpcProtocolError(f"unknown wire dtype code {code}")
    if ndim > 2:
        raise RpcProtocolError(f"bad array ndim {ndim}")
    offset += _ARRAY_HEAD.size
    if len(payload) - offset < 8 * ndim:
        raise RpcProtocolError("truncated array dims")
    shape = struct.unpack_from(f"!{ndim}Q", payload, offset)
    offset += 8 * ndim
    count = 1
    for s in shape:
        if s > MAX_PAYLOAD_BYTES:
            raise RpcProtocolError(f"absurd array dimension {s}")
        count *= s
    nbytes = count * dtype.itemsize
    if len(payload) - offset < nbytes:
        raise RpcProtocolError(
            f"array body needs {nbytes} bytes, {len(payload) - offset} remain"
        )
    arr = np.frombuffer(payload, dtype=dtype, count=count, offset=offset)
    return arr.reshape(shape), offset + nbytes


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    """Read exactly ``n`` bytes or raise ``ConnectionError`` on EOF."""
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise ConnectionError("peer closed the connection mid-frame")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Read one ``(msg_type, payload)`` frame, validating the header."""
    head = _recv_exact(sock, _HEADER.size)
    magic, version, msg_type, _reserved, length = _HEADER.unpack(head)
    if magic != MAGIC:
        raise RpcProtocolError(f"bad magic {magic!r}")
    if version != PROTOCOL_VERSION:
        raise RpcProtocolError(f"unsupported protocol version {version}")
    if length > MAX_PAYLOAD_BYTES:
        raise RpcProtocolError(f"frame payload of {length} bytes exceeds cap")
    return msg_type, _recv_exact(sock, length) if length else b""


def _pack_counters(counters) -> tuple:
    return (
        counters.configurations,
        counters.symbols_streamed,
        counters.reports_received,
        counters.report_payload_bits,
        counters.image_cache_hits,
    )


def pack_search_response(result) -> bytes:
    """Encode an engine result: counters, execution tag, index/distance
    blocks (shard-LOCAL indices — the client merge applies offsets)."""
    execution = result.execution.encode("utf-8")[:255]
    head = _SEARCH_HEAD.pack(*_pack_counters(result.counters), len(execution))
    return (
        head
        + execution
        + pack_array(np.asarray(result.indices, dtype=np.int64))
        + pack_array(np.asarray(result.distances, dtype=np.int64))
    )


def unpack_search_response(payload: bytes):
    from ..ap.runtime import RuntimeCounters

    if len(payload) < _SEARCH_HEAD.size:
        raise RpcProtocolError("truncated search response")
    fields = _SEARCH_HEAD.unpack_from(payload, 0)
    counters = RuntimeCounters(*fields[:5])
    exec_len = fields[5]
    offset = _SEARCH_HEAD.size
    if len(payload) - offset < exec_len:
        raise RpcProtocolError("truncated execution tag")
    execution = payload[offset : offset + exec_len].decode("utf-8")
    offset += exec_len
    indices, offset = unpack_array(payload, offset)
    distances, offset = unpack_array(payload, offset)
    if indices.shape != distances.shape or indices.ndim != 2:
        raise RpcProtocolError(
            f"result blocks disagree: {indices.shape} vs {distances.shape}"
        )
    return indices, distances, counters, execution


def pack_workload_request(
    name: str, params: dict, queries_bits: np.ndarray
) -> bytes:
    """Encode a generic-workload search request.

    Params travel as canonical JSON (sorted keys, no whitespace) so the
    same logical request is byte-identical on every client; nothing in
    it is executable and the server re-validates every field against
    its own shard before use.
    """
    name_b = name.encode("utf-8")
    if not 1 <= len(name_b) <= 255:
        raise RpcProtocolError(f"bad workload name {name!r}")
    params_b = json.dumps(
        params, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    return (
        _WL_REQ_HEAD.pack(len(name_b), len(params_b))
        + name_b
        + params_b
        + pack_array(np.ascontiguousarray(queries_bits, dtype=np.uint8))
    )


def unpack_workload_request(payload: bytes) -> tuple[str, dict, np.ndarray]:
    if len(payload) < _WL_REQ_HEAD.size:
        raise RpcProtocolError("truncated workload request")
    name_len, params_len = _WL_REQ_HEAD.unpack_from(payload, 0)
    offset = _WL_REQ_HEAD.size
    if len(payload) - offset < name_len + params_len:
        raise RpcProtocolError("truncated workload request fields")
    try:
        name = payload[offset : offset + name_len].decode("utf-8")
        offset += name_len
        params = json.loads(payload[offset : offset + params_len] or b"{}")
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RpcProtocolError(f"malformed workload request: {exc}") from exc
    if not isinstance(params, dict):
        raise RpcProtocolError("workload params must be a JSON object")
    offset += params_len
    queries, end = unpack_array(payload, offset)
    if end != len(payload):
        raise RpcProtocolError("trailing bytes after workload request")
    return name, params, queries


def pack_workload_response(result, workload) -> bytes:
    """Counters + execution tag + the workload's packed wire fields
    (partition-local merge done server-side; indices stay shard-LOCAL)."""
    execution = result.execution.encode("utf-8")[:255]
    head = _SEARCH_HEAD.pack(*_pack_counters(result.counters), len(execution))
    return head + execution + workload.pack(result.value)


def unpack_workload_response(payload: bytes, workload):
    """Decode one shard's reply: ``(value, counters, execution)`` where
    ``value`` is the workload's result dataclass (shard-local indices)."""
    from ..ap.runtime import RuntimeCounters

    if len(payload) < _SEARCH_HEAD.size:
        raise RpcProtocolError("truncated workload response")
    fields = _SEARCH_HEAD.unpack_from(payload, 0)
    counters = RuntimeCounters(*fields[:5])
    exec_len = fields[5]
    offset = _SEARCH_HEAD.size
    if len(payload) - offset < exec_len:
        raise RpcProtocolError("truncated execution tag")
    execution = payload[offset : offset + exec_len].decode("utf-8")
    value = workload.unpack(payload, offset + exec_len)
    return value, counters, execution


# -- server ----------------------------------------------------------------


@dataclass(frozen=True)
class ShardInfo:
    """What a shard reports about itself at handshake time."""

    n: int
    d: int
    offset: int  # global index base of this shard's vectors
    n_partitions: int

    @property
    def address(self) -> str:  # pragma: no cover - cosmetic default
        return ""


class _ShardRequestHandler(socketserver.BaseRequestHandler):
    """One connection: loop frames until the peer hangs up.

    Protocol violations answer with ``MSG_ERROR`` and drop the
    connection (the stream may be desynchronized); engine failures
    answer with ``MSG_ERROR`` and keep serving.
    """

    def handle(self) -> None:
        server: ShardServer = self.server.shard_server  # type: ignore[attr-defined]
        sock = self.request
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        server._track_connection(sock)
        try:
            # A draining server lets the in-flight request finish, then
            # ends the session at the next frame boundary (parked
            # connections are woken by drain() shutting the socket down).
            while not server._draining:
                try:
                    msg_type, payload = read_frame(sock)
                except (ConnectionError, OSError):
                    return  # peer done (or gone): normal end of session
                except RpcProtocolError as exc:
                    self._send_error(sock, str(exc))
                    return
                server._set_busy(sock, True)
                try:
                    if not self._serve_one(sock, server, msg_type, payload):
                        return
                finally:
                    server._set_busy(sock, False)
        finally:
            server._untrack_connection(sock)

    def _serve_one(
        self, sock: socket.socket, server: "ShardServer",
        msg_type: int, payload: bytes,
    ) -> bool:
        """Serve one request; False ends the session (drop connection)."""
        server._m_requests.labels(
            type={
                MSG_PING: "ping",
                MSG_INFO_REQ: "info",
                MSG_SEARCH_REQ: "search",
                MSG_WL_SEARCH_REQ: "workload_search",
            }.get(msg_type, "unknown")
        ).inc()
        try:
            if msg_type == MSG_PING:
                return self._reply(sock, server, MSG_PONG, b"")
            elif msg_type == MSG_INFO_REQ:
                info = server.info()
                return self._reply(sock, server, MSG_INFO, _INFO.pack(
                    info.n, info.d, info.offset, info.n_partitions
                ))
            elif msg_type == MSG_SEARCH_REQ:
                return self._reply(
                    sock, server, MSG_SEARCH, server._serve_search(payload)
                )
            elif msg_type == MSG_WL_SEARCH_REQ:
                return self._reply(
                    sock, server, MSG_WL_SEARCH,
                    server._serve_workload_search(payload),
                )
            else:
                self._send_error(sock, f"unknown message type {msg_type}")
                return False
        except RpcProtocolError as exc:
            self._send_error(sock, str(exc))
            return False
        except BrokenPipeError:
            return False
        except Exception as exc:  # engine error: report, keep serving
            return self._send_error(sock, f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _reply(
        sock: socket.socket, server: "ShardServer",
        msg_type: int, payload: bytes,
    ) -> bool:
        """Send one reply frame; False ends the session.

        Replies route through the server's fault hook when one is
        armed (:mod:`repro.host.faults` — chaos tests only; ``None``
        in production, a single attribute check on the hot path).
        """
        frame = pack_frame(msg_type, payload)
        hook = server.fault_hook
        if hook is not None:
            action = hook(msg_type)
            if action is not None:
                return action.apply(sock, frame)
        sock.sendall(frame)
        return True

    @staticmethod
    def _send_error(sock: socket.socket, message: str) -> bool:
        try:
            sock.sendall(pack_frame(MSG_ERROR, message.encode("utf-8")[:4096]))
            return True
        except OSError:
            return False


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True
    # Handler threads die with their connections; block_on_close would
    # make close() wait on clients that never hang up.
    block_on_close = False


class ShardServer:
    """Serve exact kNN over one local dataset shard on a TCP port.

    The server owns its engine stack outright — per-``k`` engines over
    the shard (lazily built; they share one
    :class:`~repro.ap.compiler.BoardImageCache` so partition artifacts
    compile once regardless of how many distinct ``k`` values clients
    request), a :class:`~repro.host.parallel.ParallelConfig` for local
    fan-out (including the PR 4 shared-memory transport and the pinned
    ring backend — ``repro serve --backend pinned`` keeps persistent
    ring workers hot across requests), and
    optionally multiple local boards (``n_devices > 1`` builds a
    :class:`~repro.core.multiboard.MultiBoardSearch` per ``k``).

    ``offset`` is the shard's global index base: responses carry
    shard-local indices and the *client* re-bases them during its
    merge, so the offset only has to be right in one place — the
    handshake (:class:`ShardInfo`).

    ``serve_forever()`` blocks (CLI use); ``start()`` runs the accept
    loop in a background thread (embedding/tests).  ``close()`` stops
    the loop, closes the listening socket, and releases the engine's
    parallel pool.
    """

    def __init__(
        self,
        dataset_bits: np.ndarray,
        offset: int = 0,
        host: str = "127.0.0.1",
        port: int = 0,
        n_devices: int = 1,
        workloads: tuple[str, ...] | list[str] | None = None,
        fault_hook=None,
        **engine_kwargs,
    ):
        from ..core.dataset import PackedDataset
        from ..core.engine import APSimilaritySearch
        from ..core.workload import available_workloads, get_workload

        # ndarray, PackedDataset handle, or a .pds path — a file-backed
        # shard serves without its payload ever loading into RAM, and
        # provisioning a shard host is just copying the file.
        self.dataset = PackedDataset.ensure(dataset_bits, name="shard dataset")
        self.n, self.d = self.dataset.shape
        if offset < 0:
            raise ValueError("offset must be >= 0")
        if workloads is not None:
            workloads = tuple(workloads)
            for wl_name in workloads:
                get_workload(wl_name)  # fail fast on unknown names
        # None = serve every registered workload; a tuple is an
        # admission list ("knn" included covers the legacy wire too).
        self.workloads = workloads
        self.offset = int(offset)
        self.n_devices = int(n_devices)
        if not 1 <= self.n_devices <= self.n:
            raise ValueError(
                f"n_devices={self.n_devices} out of range for an "
                f"{self.n}-row shard"
            )
        # Every workload this server could be asked to run must admit
        # the shard's geometry NOW — before the socket binds — so a bad
        # shard file fails at startup with a clear error, not on the
        # first client query.
        for wl_name in (workloads if workloads is not None
                        else available_workloads()):
            get_workload(wl_name).validate_dataset(self.n, self.d)
        engine_kwargs.setdefault("cache", True)
        self._engine_kwargs = engine_kwargs
        self._cache = APSimilaritySearch._normalize_cache(engine_kwargs["cache"])
        self._engine_kwargs["cache"] = self._cache
        self._engines: dict[int, object] = {}
        # Generic workload engines, keyed (name, sorted params items) —
        # like the per-k kNN dict, one engine per distinct request shape.
        self._workload_engines: dict[tuple, object] = {}
        self._engine_lock = threading.Lock()
        self._server = _ThreadingTCPServer(
            (host, port), _ShardRequestHandler, bind_and_activate=True
        )
        self._server.shard_server = self  # type: ignore[attr-defined]
        self._thread: threading.Thread | None = None
        self._serving = threading.Event()
        self._closed = False
        # Fault-injection hook (repro.host.faults, chaos tests only):
        # called per reply, may delay/corrupt/drop it.  None in prod.
        self.fault_hook = fault_hook
        # Live connections (socket -> currently-serving-a-request flag)
        # so drain() can distinguish parked sessions from in-flight work.
        self._draining = False
        self._conn_lock = threading.Lock()
        self._connections: dict[socket.socket, bool] = {}
        reg = _metrics.get_registry()
        self._m_inflight = reg.gauge(
            "repro_server_inflight_requests",
            "Connections currently inside a request on this server.",
        )
        self._m_requests = reg.counter(
            "repro_server_requests_total",
            "Requests served, by wire message type.",
            labelnames=("type",),
        )
        self._m_drain_remaining = reg.gauge(
            "repro_server_drain_remaining",
            "In-flight requests still finishing during a drain.",
        )

    # -- engine management -------------------------------------------------

    def _engine_for(self, k: int):
        """The shard engine serving ``k`` neighbors (built on first use).

        Engines fix ``k`` at construction; a per-``k`` dict keeps the
        wire request stateless.  The shared content-addressed cache
        means a new ``k`` never recompiles boards — only the cheap
        engine shell is rebuilt.
        """
        k = min(int(k), self.n)
        with self._engine_lock:
            engine = self._engines.get(k)
            if engine is None:
                from ..core.engine import APSimilaritySearch
                from ..core.multiboard import MultiBoardSearch

                if self.n_devices > 1:
                    engine = MultiBoardSearch(
                        self.dataset, k=k, n_devices=self.n_devices,
                        **self._engine_kwargs,
                    )
                else:
                    engine = APSimilaritySearch(
                        self.dataset, k=k, **self._engine_kwargs
                    )
                self._engines[k] = engine
            return engine

    def _check_admitted(self, name: str) -> None:
        if self.workloads is not None and name not in self.workloads:
            raise ValueError(
                f"workload {name!r} is not served by this shard "
                f"(serving: {', '.join(self.workloads)})"
            )

    def _workload_engine_for(self, name: str, params: dict):
        """The generic engine serving ``(workload, params)``, built on
        first use — sharing the server's one compile cache, so distinct
        parameter values never recompile partition artifacts."""
        from ..core.workload import WorkloadSearch, get_workload

        workload = get_workload(name)
        params = workload.validate_params(dict(params), self.n, self.d)
        key = (name,) + tuple(sorted(params.items()))
        with self._engine_lock:
            engine = self._workload_engines.get(key)
            if engine is None:
                kwargs = {
                    kw: self._engine_kwargs[kw]
                    for kw in ("board_capacity", "parallel", "device")
                    if kw in self._engine_kwargs
                }
                engine = WorkloadSearch(
                    self.dataset, workload, params,
                    cache=self._cache, **kwargs,
                )
                self._workload_engines[key] = engine
            return engine

    def info(self) -> ShardInfo:
        # Any engine knows the shard's partitioning; only build one
        # (k=1, the cheapest shell) when no search has warmed one yet.
        with self._engine_lock:
            engine = next(iter(self._engines.values()), None)
        if engine is None:
            engine = self._engine_for(1)
        n_partitions = (
            engine.n_partition_passes
            if hasattr(engine, "n_partition_passes")
            else len(engine.partitions)
        )
        return ShardInfo(
            n=self.n, d=self.d, offset=self.offset, n_partitions=n_partitions
        )

    def _serve_search(self, payload: bytes) -> bytes:
        if len(payload) < _SEARCH_REQ.size:
            raise RpcProtocolError("truncated search request")
        (k,) = _SEARCH_REQ.unpack_from(payload, 0)
        if not 1 <= k <= MAX_PAYLOAD_BYTES:
            raise RpcProtocolError(f"bad k={k}")
        queries, end = unpack_array(payload, _SEARCH_REQ.size)
        if end != len(payload):
            raise RpcProtocolError("trailing bytes after search request")
        if queries.ndim != 2 or queries.shape[1] != self.d:
            raise RpcProtocolError(
                f"queries shape {queries.shape} does not match shard d={self.d}"
            )
        if queries.dtype != np.uint8:
            raise RpcProtocolError("queries must be uint8")
        self._check_admitted("knn")  # the legacy wire IS the kNN workload
        result = self._engine_for(k).search(queries)
        return pack_search_response(result)

    def _serve_workload_search(self, payload: bytes) -> bytes:
        name, params, queries = unpack_workload_request(payload)
        self._check_admitted(name)
        if queries.ndim != 2 or queries.shape[1] != self.d:
            raise RpcProtocolError(
                f"queries shape {queries.shape} does not match shard d={self.d}"
            )
        if queries.dtype != np.uint8:
            raise RpcProtocolError("queries must be uint8")
        engine = self._workload_engine_for(name, params)
        result = engine.search(queries)
        return pack_workload_response(result, engine.workload)

    # -- lifecycle ---------------------------------------------------------

    @property
    def address(self) -> tuple[str, int]:
        """The bound ``(host, port)`` — port is concrete even for 0."""
        return self._server.server_address[:2]

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`close` (CLI entry)."""
        self._serving.set()
        try:
            self._server.serve_forever(poll_interval=0.1)
        except (OSError, ValueError):
            # close() or drain() may have raced us and closed the
            # listening socket before the accept loop started —
            # selectors raise OSError or ValueError ("Invalid file
            # descriptor") depending on where the race lands; both are
            # a clean shutdown then.
            if not (self._closed or self._draining):
                raise

    def start(self) -> "ShardServer":
        """Serve in a daemon thread; returns self for chaining."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-shard-{self.address[1]}",
                daemon=True,
            )
            self._thread.start()
        return self

    # -- graceful drain ----------------------------------------------------

    def _track_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._connections[sock] = False

    def _set_busy(self, sock: socket.socket, busy: bool) -> None:
        with self._conn_lock:
            if sock in self._connections:
                self._connections[sock] = busy
            active = sum(1 for b in self._connections.values() if b)
        self._m_inflight.set(active)

    def _untrack_connection(self, sock: socket.socket) -> None:
        with self._conn_lock:
            self._connections.pop(sock, None)

    @property
    def active_requests(self) -> int:
        """Connections currently inside a request (not merely parked)."""
        with self._conn_lock:
            return sum(1 for busy in self._connections.values() if busy)

    def drain(
        self,
        timeout_s: float = 5.0,
        progress=None,
        progress_interval_s: float = 0.5,
    ) -> bool:
        """Graceful shutdown, phase 1: stop accepting, finish in-flight.

        Stops the accept loop and closes the listening socket (new
        connects are refused immediately — a load balancer or replica
        group fails over), wakes connections parked between requests so
        their sessions end cleanly, and waits up to ``timeout_s`` for
        requests already being served to complete.  Returns True when
        every session ended inside the bound; False means stragglers
        were cut off.  Call :meth:`close` afterwards to release engine
        pools — the SIGTERM path in ``repro serve`` does exactly
        ``drain(); close()``, so a rolling restart never drops an
        accepted request while staying bounded by ``timeout_s``.

        Drain progress is observable two ways (a drain that stalls on a
        slow request used to be indistinguishable from a hang):
        ``progress(in_flight, sessions, remaining_s)`` is called every
        ``progress_interval_s`` while sessions remain (the CLI logs it),
        and the ``repro_server_drain_remaining`` gauge tracks the
        in-flight count for scrapes.
        """
        self._draining = True
        if self._serving.is_set():
            self._server.shutdown()
        self._server.server_close()
        deadline = time.monotonic() + max(0.0, float(timeout_s))
        next_report = time.monotonic()
        drained = False
        while True:
            with self._conn_lock:
                conns = dict(self._connections)
            in_flight = sum(1 for busy in conns.values() if busy)
            self._m_drain_remaining.set(in_flight)
            if not conns:
                drained = True
                break
            now = time.monotonic()
            if progress is not None and now >= next_report:
                try:
                    progress(in_flight, len(conns), max(0.0, deadline - now))
                except Exception:
                    pass  # a broken reporter must not break the drain
                next_report = now + max(0.0, float(progress_interval_s))
            for sock, busy in conns.items():
                if not busy:
                    # Parked in read_frame between requests: shutting
                    # the socket down fails that read immediately and
                    # the handler exits (it owns the close).
                    try:
                        sock.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
            if now >= deadline:
                break
            time.sleep(0.01)
        if not drained:
            with self._conn_lock:
                stragglers = list(self._connections)
            if progress is not None:
                try:
                    progress(len(stragglers), len(stragglers), 0.0)
                except Exception:
                    pass
            for sock in stragglers:
                try:
                    sock.shutdown(socket.SHUT_RDWR)
                except OSError:
                    pass
        self._m_drain_remaining.set(0)
        return drained

    def close(self) -> None:
        """Stop serving, close the socket, release engine pools."""
        if self._closed:
            return
        self._closed = True
        # BaseServer.shutdown() waits on an event that only
        # serve_forever() sets: calling it on a server that was
        # constructed but never served would block forever.
        if self._serving.is_set():
            self._server.shutdown()
        self._server.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None
        with self._engine_lock:
            engines = list(self._engines.values())
            engines += list(self._workload_engines.values())
            self._engines, self._workload_engines = {}, {}
        for engine in engines:
            parallel = getattr(engine, "parallel", None)
            if parallel is not None and getattr(parallel, "persistent", False):
                parallel.close()

    def __enter__(self) -> "ShardServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def serve_shard(
    dataset_bits: np.ndarray,
    shard_index: int = 0,
    n_shards: int = 1,
    **server_kwargs,
) -> ShardServer:
    """Construct a :class:`ShardServer` for one balanced shard of a
    full dataset — shard bounds and the global offset are derived with
    the same :func:`~repro.core.multiboard.balanced_shard_bounds` the
    local multi-board layer uses, so a rack of ``serve_shard(data, i,
    N)`` servers covers the dataset exactly.  Accepts anything
    :meth:`~repro.core.dataset.PackedDataset.ensure` does — a ``.pds``
    path shards by zero-copy sub-window, so every server in the rack
    can point at the *same* file and carve out its own rows.  Bounds
    derive from the handle's own row count, so RPC sharding can't
    disagree with the store's actual length."""
    from ..core.dataset import PackedDataset
    from ..core.multiboard import balanced_shard_bounds

    dataset = PackedDataset.ensure(dataset_bits, name="shard dataset")
    if not 0 <= shard_index < n_shards:
        raise ValueError(f"need 0 <= shard_index < n_shards, got "
                         f"{shard_index}/{n_shards}")
    bounds = balanced_shard_bounds(dataset.n, n_shards)
    lo, hi = int(bounds[shard_index]), int(bounds[shard_index + 1])
    return ShardServer(dataset.slice_rows(lo, hi), offset=lo, **server_kwargs)


# -- client ----------------------------------------------------------------


class RemoteShard:
    """One connection-reusing client to a :class:`ShardServer`.

    Not safe for concurrent requests from multiple threads over the
    same instance without external ordering — the pool drives each
    shard from exactly one worker lane per batch and serializes batches,
    and a lock here guards against misuse from user code.

    Any transport failure (timeout, reset, protocol violation) poisons
    the connection — a late reply to a timed-out request must never be
    read as the answer to the next one — so errors always reconnect.
    """

    def __init__(
        self,
        address: str,
        timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        retries: int = 1,
        backoff_base_s: float = 0.05,
        backoff_cap_s: float = 2.0,
    ):
        host, sep, port = address.rpartition(":")
        if not sep or not host:
            raise ValueError(
                f"shard address must be 'host:port', got {address!r}"
            )
        self.host, self.port = host, int(port)
        self.address = f"{host}:{int(port)}"
        self.timeout_s = float(timeout_s)
        self.connect_timeout_s = float(connect_timeout_s)
        self.retries = int(retries)
        self.backoff_base_s = float(backoff_base_s)
        self.backoff_cap_s = float(backoff_cap_s)
        self.bytes_sent = 0
        self.bytes_received = 0
        self._sock: socket.socket | None = None
        self._aborted = False
        self._lock = threading.Lock()
        reg = _metrics.get_registry()
        self._m_roundtrip = reg.histogram(
            "repro_rpc_roundtrip_seconds",
            "Client-observed request/response round-trip latency.",
        )
        self._m_sent = reg.counter(
            "repro_rpc_bytes_sent_total", "Request frame bytes sent."
        )
        self._m_received = reg.counter(
            "repro_rpc_bytes_received_total", "Response frame bytes received."
        )
        self._m_retries = reg.counter(
            "repro_rpc_retries_total",
            "Failed round-trip attempts by failure kind.",
            labelnames=("kind",),
        )

    # Indirection so tests can observe/skip the backoff sleeps.
    _sleep = staticmethod(time.sleep)

    # -- transport --------------------------------------------------------

    def _connected(self) -> socket.socket:
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.connect_timeout_s
            )
            sock.settimeout(self.timeout_s)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self._sock

    def _drop_connection(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def abort(self) -> None:
        """Cross-thread cancel of an in-flight round trip.

        The replication layer aborts a hedged request's loser: shutting
        the socket down fails the blocked recv immediately, and the
        armed flag turns the failure into a non-retried
        :class:`RemoteShardError` instead of a reconnect-with-backoff
        loop.  The next round trip (after the owner re-arms via
        :meth:`_clear_abort`) reconnects fresh; deliberately lock-free
        so it works while :meth:`_round_trip` holds the request lock.
        """
        self._aborted = True
        sock = self._sock
        if sock is not None:
            try:
                sock.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass

    def _clear_abort(self) -> None:
        self._aborted = False

    def _round_trip(self, msg_type: int, payload: bytes) -> tuple[int, bytes]:
        """One request/response round with bounded reconnect-retries.

        Retries back off exponentially with jitter, capped at
        ``backoff_cap_s`` — immediate reconnects from a rack of clients
        synchronize into connect storms against a host that just died —
        and connect vs. request failures are counted separately so the
        final error says whether the host was unreachable or the
        service misbehaved once connected.
        """
        frame = pack_frame(msg_type, payload)
        last_error: Exception | None = None
        connect_failures = 0
        request_failures = 0
        with self._lock:
            for attempt in range(self.retries + 1):
                if self._aborted:
                    raise RemoteShardError(
                        f"shard {self.address}: request aborted"
                    ) from last_error
                if attempt and self.backoff_base_s > 0:
                    delay = min(
                        self.backoff_cap_s,
                        self.backoff_base_s * (1 << (attempt - 1)),
                    )
                    # Full jitter in [delay/2, delay): desynchronizes
                    # reconnect herds without ever retrying instantly.
                    self._sleep(delay * (0.5 + 0.5 * random.random()))
                try:
                    sock = self._connected()
                except OSError as exc:
                    connect_failures += 1
                    self._m_retries.labels(kind="connect").inc()
                    last_error = exc
                    self._drop_connection()
                    continue
                t0 = time.perf_counter()
                try:
                    sock.sendall(frame)
                    resp_type, resp = read_frame(sock)
                except (OSError, ConnectionError, RpcProtocolError) as exc:
                    request_failures += 1
                    self._m_retries.labels(kind="request").inc()
                    last_error = exc
                    self._drop_connection()
                    continue
                self._m_roundtrip.observe(time.perf_counter() - t0)
                self.bytes_sent += len(frame)
                self.bytes_received += _HEADER.size + len(resp)
                self._m_sent.inc(len(frame))
                self._m_received.inc(_HEADER.size + len(resp))
                if resp_type == MSG_ERROR:
                    # Server-side failure: the stream itself is intact.
                    raise RemoteShardError(
                        f"shard {self.address}: {resp.decode('utf-8', 'replace')}"
                    )
                return resp_type, resp
        raise RemoteShardError(
            f"shard {self.address} unreachable after "
            f"{self.retries + 1} attempt(s) ({connect_failures} connect / "
            f"{request_failures} request failure(s)): {last_error}"
        ) from last_error

    # Pre-PR 9 name, kept so embedders' stubs and wrappers still work.
    _request = _round_trip

    # -- requests ---------------------------------------------------------

    def ping(self) -> bool:
        resp_type, _ = self._round_trip(MSG_PING, b"")
        return resp_type == MSG_PONG

    def info(self) -> ShardInfo:
        resp_type, payload = self._round_trip(MSG_INFO_REQ, b"")
        if resp_type != MSG_INFO or len(payload) != _INFO.size:
            raise RemoteShardError(
                f"shard {self.address}: malformed info response"
            )
        n, d, offset, n_partitions = _INFO.unpack(payload)
        return ShardInfo(n=n, d=d, offset=offset, n_partitions=n_partitions)

    def search(self, queries_bits: np.ndarray, k: int):
        """Shard-local exact top-k: ``(indices, distances, counters,
        execution)`` with shard-LOCAL indices."""
        payload = _SEARCH_REQ.pack(int(k)) + pack_array(
            np.ascontiguousarray(queries_bits, dtype=np.uint8)
        )
        resp_type, resp = self._round_trip(MSG_SEARCH_REQ, payload)
        if resp_type != MSG_SEARCH:
            raise RemoteShardError(
                f"shard {self.address}: unexpected response type {resp_type}"
            )
        try:
            return unpack_search_response(resp)
        except RpcProtocolError as exc:
            self._drop_connection()
            raise RemoteShardError(f"shard {self.address}: {exc}") from exc

    def search_workload(
        self, queries_bits: np.ndarray, workload_name: str, params: dict
    ):
        """Shard-local workload run: ``(value, counters, execution)``
        where ``value`` is the workload's result dataclass carrying
        shard-LOCAL indices (the pool merge applies offsets)."""
        from ..core.workload import get_workload

        workload = get_workload(workload_name)
        payload = pack_workload_request(workload_name, params, queries_bits)
        resp_type, resp = self._round_trip(MSG_WL_SEARCH_REQ, payload)
        if resp_type != MSG_WL_SEARCH:
            raise RemoteShardError(
                f"shard {self.address}: unexpected response type {resp_type}"
            )
        try:
            return unpack_workload_response(resp, workload)
        except RpcProtocolError as exc:
            self._drop_connection()
            raise RemoteShardError(f"shard {self.address}: {exc}") from exc

    def close(self) -> None:
        with self._lock:
            self._drop_connection()

    def __enter__(self) -> "RemoteShard":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RemoteShardPool:
    """Fan a query batch out to N remote shards and merge exactly.

    The pool handshakes the shards at construction (d-consistency,
    global offsets, total n) and keeps one reusable connection per
    shard.  With ``allow_partial=True`` the handshake itself is
    degradation-tolerant: a shard that is down when the pool comes up
    is recorded as failed (at least one shard must answer) and its
    handshake is retried on every later batch, so a rack self-heals
    when the host returns — until then ``total_n``, and therefore the
    effective ``k``, cover the known shards only.  ``search(queries,
    k)`` runs all shards concurrently (one thread lane per shard),
    applies per-shard timeouts/retries, and merges whatever answered
    through the offset-aware :func:`~repro.util.topk.merge_topk_blocks`
    — bit-identical to one local engine over the concatenated dataset
    when every shard answers, and an exact merge over the answering
    subset (flagged ``partial``, failures named in ``failed_shards``)
    when some do not.
    """

    def __init__(
        self,
        addresses: list[str] | tuple[str, ...],
        timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        retries: int = 1,
        allow_partial: bool = True,
        hedge=None,
        health=None,
    ):
        from .replication import ReplicaGroup

        if not addresses:
            raise ValueError("need at least one shard address")
        # Each slot is a replica group over one shard index: a plain
        # "host:port" is a group of one (zero overhead vs PR 5), while
        # "host:port|host:port" (or a list of addresses) replicates the
        # slot — failover and hedging happen inside the group, so the
        # fan-out/merge below never sees individual replicas.
        self.shards = [
            ReplicaGroup(
                spec, timeout_s=timeout_s,
                connect_timeout_s=connect_timeout_s, retries=retries,
                hedge=hedge, health=health,
            )
            for spec in addresses
        ]
        self.allow_partial = bool(allow_partial)
        self._infos: dict[int, ShardInfo] = {}
        # Guards _infos: concurrent fan-out lanes may admit healed
        # shards' handshakes while other lanes (or properties) read.
        self._info_lock = threading.Lock()
        self._pool = ThreadPoolExecutor(
            max_workers=len(self.shards),
            thread_name_prefix="repro-rpc-fanout",
        )
        # Handshake all shards concurrently (one lane each, like the
        # query fan-out) so construction latency is one connect timeout,
        # not the sum over dead hosts; admission stays in address order
        # so the d-consistency anchor is deterministic.
        handshakes = [
            self._pool.submit(shard.info) for shard in self.shards
        ]
        first_error: Exception | None = None
        for i, future in enumerate(handshakes):
            try:
                self._admit_info(i, future.result())
            except (RemoteShardError, OSError, ValueError) as exc:
                if not self.allow_partial or isinstance(exc, ValueError):
                    self.close()
                    raise
                if first_error is None:
                    first_error = exc
        if not self._infos:
            self.close()
            raise RemoteShardError(
                f"no shard of {len(self.shards)} answered the handshake"
            ) from first_error

    def _admit_info(self, i: int, info: ShardInfo) -> ShardInfo:
        """Record a shard's handshake, enforcing d-consistency."""
        with self._info_lock:
            d_known = (
                next(iter(self._infos.values())).d if self._infos else None
            )
            if d_known is not None and info.d != d_known:
                raise ValueError(
                    f"shard {self.shards[i].address} disagrees on "
                    f"dimensionality: d={info.d} vs d={d_known}"
                )
            self._infos[i] = info
            return info

    @property
    def d(self) -> int:
        with self._info_lock:
            return next(iter(self._infos.values())).d

    @property
    def total_n(self) -> int:
        """Vectors across the shards that have completed a handshake."""
        with self._info_lock:
            return sum(info.n for info in self._infos.values())

    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def wire_bytes(self) -> tuple[int, int]:
        """Cumulative ``(sent, received)`` bytes across all shards."""
        return (
            sum(s.bytes_sent for s in self.shards),
            sum(s.bytes_received for s in self.shards),
        )

    def _replica_events(self) -> tuple[int, int]:
        """Cumulative ``(failovers, hedges)`` across all groups —
        snapshot before/after a fan-out to attribute events per batch."""
        return (
            sum(g.failovers for g in self.shards),
            sum(g.hedges for g in self.shards),
        )

    def health_snapshot(self) -> dict[str, list[dict]]:
        """Per-replica health (state, EWMA latency, failure counts),
        keyed by group address — observability, not a control surface."""
        return {g.address: g.health_snapshot() for g in self.shards}

    def _shard_batch(self, i: int, queries_bits: np.ndarray, k: int):
        """One fan-out lane: (re-)handshake if needed, then search.

        A shard that missed its construction-time handshake gets a new
        attempt here — inside its own lane, so a still-dead host costs
        only this lane's connect timeout, never the other shards'
        latency — and the rack self-heals once the host returns.
        """
        shard = self.shards[i]
        with self._info_lock:
            info = self._infos.get(i)
        if info is None:
            info = self._admit_info(i, shard.info())
        return info, shard.search(queries_bits, min(k, info.n))

    def search(self, queries_bits: np.ndarray, k: int):
        """Fan out one batch; returns a
        :class:`~repro.core.multiboard.MultiBoardResult` whose indices
        are global dataset IDs."""
        from ..ap.runtime import RuntimeCounters
        from ..core.multiboard import MultiBoardResult
        from ..core.workload import get_workload

        queries_bits = np.ascontiguousarray(queries_bits, dtype=np.uint8)
        if queries_bits.ndim == 1:
            queries_bits = queries_bits[None, :]
        if queries_bits.ndim != 2 or queries_bits.shape[1] != self.d:
            raise ValueError(
                f"queries must be (q, {self.d}) uint8, got {queries_bits.shape}"
            )
        n_q = queries_bits.shape[0]
        k = int(k)
        if k < 1:
            raise ValueError("k must be >= 1")

        # The raw requested k goes to every lane (clipped per shard at
        # dispatch); the merge width is clipped only AFTER the fan-out,
        # so a shard whose handshake heals mid-batch widens this very
        # batch instead of being silently truncated to the stale
        # total_n.
        failovers0, hedges0 = self._replica_events()
        futures = [
            self._pool.submit(self._shard_batch, i, queries_bits, k)
            for i in range(len(self.shards))
        ]
        blocks: list[tuple[np.ndarray, np.ndarray]] = []
        offsets: list[int] = []
        per_shard_partitions: list[int] = []
        failed: list[str] = []
        counters = RuntimeCounters()
        modes: set[str] = set()
        first_error: Exception | None = None
        for shard, future in zip(self.shards, futures):
            try:
                info, (indices, distances, delta, execution) = future.result()
            except (RemoteShardError, OSError, ValueError) as exc:
                failed.append(shard.address)
                if first_error is None:
                    first_error = exc
                continue
            if indices.shape[0] != n_q:
                failed.append(shard.address)
                if first_error is None:
                    first_error = RemoteShardError(
                        f"shard {shard.address} answered {indices.shape[0]} "
                        f"rows for a {n_q}-row batch"
                    )
                shard.close()  # desynchronized: force a fresh connection
                continue
            counters.merge(delta)
            modes.add(execution)
            blocks.append((indices, distances))
            offsets.append(info.offset)
            per_shard_partitions.append(info.n_partitions)
        if failed and not self.allow_partial:
            raise RemoteShardError(
                f"{len(failed)}/{len(self.shards)} shard(s) failed: "
                f"{', '.join(failed)}"
            ) from first_error

        # The same offset-aware merge every layer uses, routed through
        # the kNN reference Workload.
        workload = get_workload("knn")
        k_total = min(k, self.total_n)
        if blocks:
            merged = workload.merge(blocks, offsets, {"k": k_total})
        else:
            merged = workload.empty(n_q, {"k": k_total})
        indices, distances = merged.indices, merged.distances
        if len(modes) == 1:
            execution = modes.pop()
        else:
            # empty set = nothing answered: "none", not a fake "mixed"
            execution = "mixed" if modes else "none"
        failovers1, hedges1 = self._replica_events()
        return MultiBoardResult(
            indices=indices,
            distances=distances,
            per_device_partitions=per_shard_partitions,
            counters=counters,
            execution=execution,
            n_workers=len(blocks),
            transport="rpc",
            failed_shards=tuple(failed),
            failovers=failovers1 - failovers0,
            hedges=hedges1 - hedges0,
        )

    def _shard_workload_batch(
        self, i: int, queries_bits: np.ndarray, name: str, params: dict
    ):
        """One generic-workload fan-out lane; self-healing handshake
        semantics identical to :meth:`_shard_batch`."""
        shard = self.shards[i]
        with self._info_lock:
            info = self._infos.get(i)
        if info is None:
            info = self._admit_info(i, shard.info())
        return info, shard.search_workload(queries_bits, name, params)

    def search_workload(
        self,
        queries_bits: np.ndarray,
        workload_name: str,
        params: dict | None = None,
    ):
        """Fan one batch of any registered workload out to every shard
        and merge through the workload's own offset-aware ``merge``.

        Raw user params go to every lane (each shard re-validates
        against its own ``n``, clipping e.g. ``k`` locally exactly as
        the legacy path clips at dispatch); the merge params are
        validated against ``total_n`` only AFTER the fan-out, so a
        shard whose handshake heals mid-batch widens this very batch.
        Returns a :class:`~repro.core.workload.WorkloadRunResult` whose
        value carries global dataset indices.
        """
        from ..ap.runtime import RuntimeCounters
        from ..core.workload import WorkloadRunResult, get_workload

        workload = get_workload(workload_name)
        queries_bits = np.ascontiguousarray(queries_bits, dtype=np.uint8)
        if queries_bits.ndim == 1:
            queries_bits = queries_bits[None, :]
        if queries_bits.ndim != 2 or queries_bits.shape[1] != self.d:
            raise ValueError(
                f"queries must be (q, {self.d}) uint8, got {queries_bits.shape}"
            )
        n_q = queries_bits.shape[0]
        params = dict(params or {})
        # Early client-side validation for fast failure on malformed
        # requests (bad radius, k < 1, ...); the post-fan-out validation
        # below is the one that sizes the merge.
        workload.validate_params(params, self.total_n, self.d)

        failovers0, hedges0 = self._replica_events()
        futures = [
            self._pool.submit(
                self._shard_workload_batch, i, queries_bits,
                workload_name, params,
            )
            for i in range(len(self.shards))
        ]
        partials: list = []
        offsets: list[int] = []
        per_shard_partitions: list[int] = []
        failed: list[str] = []
        counters = RuntimeCounters()
        modes: set[str] = set()
        first_error: Exception | None = None
        row_field = workload.wire_fields[0]
        for shard, future in zip(self.shards, futures):
            try:
                info, (value, delta, execution) = future.result()
            except (RemoteShardError, OSError, ValueError) as exc:
                failed.append(shard.address)
                if first_error is None:
                    first_error = exc
                continue
            rows = getattr(value, row_field).shape[0]
            if rows != n_q:
                failed.append(shard.address)
                if first_error is None:
                    first_error = RemoteShardError(
                        f"shard {shard.address} answered {rows} rows "
                        f"for a {n_q}-row batch"
                    )
                shard.close()  # desynchronized: force a fresh connection
                continue
            counters.merge(delta)
            modes.add(execution)
            partials.append(value)
            offsets.append(info.offset)
            per_shard_partitions.append(info.n_partitions)
        if failed and not self.allow_partial:
            raise RemoteShardError(
                f"{len(failed)}/{len(self.shards)} shard(s) failed: "
                f"{', '.join(failed)}"
            ) from first_error

        merge_params = workload.validate_params(
            params, self.total_n, self.d
        )
        if partials:
            value = workload.merge(partials, offsets, merge_params)
        else:
            value = workload.empty(n_q, merge_params)
        if len(modes) == 1:
            execution = modes.pop()
        else:
            execution = "mixed" if modes else "none"
        failovers1, hedges1 = self._replica_events()
        return WorkloadRunResult(
            workload=workload_name,
            value=value,
            counters=counters,
            n_partitions=sum(per_shard_partitions),
            execution=execution,
            n_workers=len(partials),
            transport="rpc",
            failed_shards=tuple(failed),
            failovers=failovers1 - failovers0,
            hedges=hedges1 - hedges0,
        )

    def close(self) -> None:
        self._pool.shutdown(wait=True, cancel_futures=True)
        for shard in self.shards:
            shard.close()

    def __enter__(self) -> "RemoteShardPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RemoteMultiBoardSearch:
    """The :class:`~repro.core.multiboard.MultiBoardSearch` surface over
    a rack of remote shards.

    Same ``search()``/``batched()`` contract as the local engines —
    including the ``d``/``k`` attributes the
    :class:`~repro.host.batching.BatchRouter` validates against — so
    the admission layer, the CLI, and any ``searcher``-shaped caller
    compose unchanged whether the shards are threads on this host or
    machines across a rack.
    """

    def __init__(
        self,
        addresses: list[str] | tuple[str, ...],
        k: int,
        timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        retries: int = 1,
        allow_partial: bool = True,
        hedge=None,
        health=None,
    ):
        if k < 1:
            raise ValueError("k must be >= 1")
        self.requested_k = int(k)
        self.pool = RemoteShardPool(
            addresses, timeout_s=timeout_s,
            connect_timeout_s=connect_timeout_s, retries=retries,
            allow_partial=allow_partial, hedge=hedge, health=health,
        )

    @property
    def n(self) -> int:
        """Vectors across handshaken shards (grows as a rack heals)."""
        return self.pool.total_n

    @property
    def d(self) -> int:
        return self.pool.d

    @property
    def k(self) -> int:
        """Effective neighbors per query: the requested ``k`` clipped
        to the currently-known dataset size."""
        return min(self.requested_k, self.n)

    @property
    def n_shards(self) -> int:
        return self.pool.n_shards

    def search(self, queries_bits: np.ndarray):
        queries_bits = np.asarray(queries_bits, dtype=np.uint8)
        if queries_bits.ndim == 1:
            queries_bits = queries_bits[None, :]
        if not np.isin(queries_bits, (0, 1)).all():
            raise ValueError("queries must be binary (0/1)")
        return self.pool.search(queries_bits, self.requested_k)

    def batched(
        self,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
    ):
        """A :class:`~repro.host.batching.BatchRouter` admission layer
        in front of the remote fan-out — the PR 4 front door, unchanged."""
        from .batching import BatchRouter

        return BatchRouter(
            self,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
        )

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "RemoteMultiBoardSearch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class RemoteWorkloadSearch:
    """The :class:`~repro.core.workload.WorkloadSearch` surface over a
    rack of remote shards — any registered workload, same
    ``search()``/``batched()``/``split_result`` contract as the local
    generic engine, so the admission layer and the CLI compose
    unchanged.  Custom workloads must be registered (imported) on the
    servers too: the name on the wire resolves through each process's
    own registry.
    """

    def __init__(
        self,
        addresses: list[str] | tuple[str, ...],
        workload: str,
        params: dict | None = None,
        timeout_s: float = 10.0,
        connect_timeout_s: float = 5.0,
        retries: int = 1,
        allow_partial: bool = True,
        hedge=None,
        health=None,
    ):
        from ..core.workload import get_workload

        self.workload = (
            get_workload(workload) if isinstance(workload, str) else workload
        )
        self.params = dict(params or {})
        self.pool = RemoteShardPool(
            addresses, timeout_s=timeout_s,
            connect_timeout_s=connect_timeout_s, retries=retries,
            allow_partial=allow_partial, hedge=hedge, health=health,
        )
        # Fail fast on malformed params (bad radius, k < 1, ...) before
        # any caller blocks on a fan-out.
        self.workload.validate_params(
            dict(self.params), self.pool.total_n, self.pool.d
        )

    @property
    def n(self) -> int:
        """Vectors across handshaken shards (grows as a rack heals)."""
        return self.pool.total_n

    @property
    def d(self) -> int:
        return self.pool.d

    @property
    def n_shards(self) -> int:
        return self.pool.n_shards

    def search(self, queries_bits: np.ndarray):
        queries_bits = np.asarray(queries_bits, dtype=np.uint8)
        if queries_bits.ndim == 1:
            queries_bits = queries_bits[None, :]
        if not np.isin(queries_bits, (0, 1)).all():
            raise ValueError("queries must be binary (0/1)")
        return self.pool.search_workload(
            queries_bits, self.workload.name, self.params
        )

    def split_result(self, result, lo: int, hi: int):
        """Row-slice for the batching layer, through the workload's
        own ``split`` — same hook the local generic engine exposes."""
        return replace(
            result, value=self.workload.split(result.value, lo, hi)
        )

    def batched(
        self,
        max_batch: int = 256,
        max_wait_ms: float = 2.0,
        max_pending: int = 1024,
    ):
        """A :class:`~repro.host.batching.BatchRouter` admission layer
        in front of the remote workload fan-out."""
        from .batching import BatchRouter

        return BatchRouter(
            self,
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            max_pending=max_pending,
        )

    def close(self) -> None:
        self.pool.close()

    def __enter__(self) -> "RemoteWorkloadSearch":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
