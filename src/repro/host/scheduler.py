"""Partition scheduler: the Section III-C flow on the driver timeline.

Schedules a multi-partition kNN run — configure partition, stream the
query batch, decode its reports, reconfigure, ... — onto an
:class:`~repro.host.driver.APDriver` and returns the timeline.  Three
pipeline policies bracket the paper's assumptions:

* ``"blocking"`` — every API call is a barrier; the naive host program.
* ``"async"`` — non-blocking calls: decoding partition *i* overlaps the
  reconfiguration + streaming of partition *i+1* (the paper's CUDA-like
  concurrency assumption).
* ``"query-overlap"`` — additionally credits the sort/Hamming phase
  overlap across consecutive queries, so steady-state cost per query is
  ``d`` cycles instead of the full ``2d + L + 3`` block.  With this
  policy the schedule's makespan reproduces the paper's AP rows
  (``partitions x (reconfig + q·d·cycle)``).

The ablation benchmark compares all three, quantifying how much of the
paper's reported performance comes from each pipelining assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ap.device import APDeviceSpec, GEN1
from .driver import APDriver, SubmissionMode, Timeline

__all__ = ["ScheduleResult", "schedule_knn_run", "POLICIES"]

POLICIES = ("blocking", "async", "query-overlap")


@dataclass
class ScheduleResult:
    policy: str
    timeline: Timeline
    n_partitions: int
    n_queries: int

    @property
    def makespan_s(self) -> float:
        return self.timeline.makespan_s

    @property
    def device_utilization(self) -> float:
        return self.timeline.device_utilization


def schedule_knn_run(
    n_partitions: int,
    n_queries: int,
    d: int,
    block_length: int,
    reports_per_partition: int,
    device: APDeviceSpec = GEN1,
    policy: str = "async",
    charge_first_configure: bool = True,
    host_ns_per_report: float = 2.0,
) -> ScheduleResult:
    """Build the full run's timeline under ``policy``."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if n_partitions < 1 or n_queries < 1:
        raise ValueError("need at least one partition and one query")

    mode = SubmissionMode.BLOCKING if policy == "blocking" else SubmissionMode.ASYNC
    driver = APDriver(device, mode=mode, host_ns_per_report=host_ns_per_report)

    if policy == "query-overlap":
        # steady state: one query costs d symbols; the first query of a
        # partition still pays the full block (pipeline fill).
        symbols_per_partition = block_length + (n_queries - 1) * d
    else:
        symbols_per_partition = n_queries * block_length

    for p in range(n_partitions):
        if p > 0 or charge_first_configure:
            driver.configure(label=f"cfg p{p}")
        stream_op = driver.stream(symbols_per_partition, label=f"stream p{p}")
        driver.decode(reports_per_partition, stream_op, label=f"decode p{p}")
    driver.synchronize()
    return ScheduleResult(
        policy=policy,
        timeline=driver.timeline,
        n_partitions=n_partitions,
        n_queries=n_queries,
    )
