"""Partition scheduler: the Section III-C flow on the driver timeline.

Schedules a multi-partition kNN run — configure partition, stream the
query batch, decode its reports, reconfigure, ... — onto an
:class:`~repro.host.driver.APDriver` and returns the timeline.  Three
pipeline policies bracket the paper's assumptions:

* ``"blocking"`` — every API call is a barrier; the naive host program.
* ``"async"`` — non-blocking calls: decoding partition *i* overlaps the
  reconfiguration + streaming of partition *i+1* (the paper's CUDA-like
  concurrency assumption).
* ``"query-overlap"`` — additionally credits the sort/Hamming phase
  overlap across consecutive queries, so steady-state cost per query is
  ``d`` cycles instead of the full ``2d + L + 3`` block.  With this
  policy the schedule's makespan reproduces the paper's AP rows
  (``partitions x (reconfig + q·d·cycle)``).

The ablation benchmark compares all three, quantifying how much of the
paper's reported performance comes from each pipelining assumption.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..ap.device import APDeviceSpec, GEN1
from .driver import APDriver, SubmissionMode, Timeline

__all__ = ["ScheduleResult", "schedule_knn_run", "POLICIES"]

POLICIES = ("blocking", "async", "query-overlap")


@dataclass
class ScheduleResult:
    policy: str
    timeline: Timeline
    n_partitions: int
    n_queries: int
    n_workers: int = 1

    @property
    def makespan_s(self) -> float:
        return self.timeline.makespan_s

    @property
    def device_utilization(self) -> float:
        return self.timeline.device_utilization


def schedule_knn_run(
    n_partitions: int,
    n_queries: int,
    d: int,
    block_length: int,
    reports_per_partition: int,
    device: APDeviceSpec = GEN1,
    policy: str = "async",
    charge_first_configure: bool = True,
    host_ns_per_report: float = 2.0,
    n_workers: int = 1,
) -> ScheduleResult:
    """Build the full run's timeline under ``policy``.

    ``n_workers > 1`` models the sharded parallel execution layer
    (:mod:`repro.host.parallel`): partitions are dealt round-robin to
    ``n_workers`` independent worker lanes, each with its own device
    queue and host decode thread, and the makespan is the slowest
    lane's.  Only the non-blocking policies (``"async"`` and
    ``"query-overlap"``) can exploit workers — under ``"blocking"``
    every API call serializes the host, so extra workers are ignored.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; expected one of {POLICIES}")
    if n_partitions < 1 or n_queries < 1:
        raise ValueError("need at least one partition and one query")
    if n_workers < 1:
        raise ValueError("need at least one worker")

    mode = SubmissionMode.BLOCKING if policy == "blocking" else SubmissionMode.ASYNC
    lanes = 1 if policy == "blocking" else min(n_workers, n_partitions)
    drivers = [
        APDriver(device, mode=mode, host_ns_per_report=host_ns_per_report)
        for _ in range(lanes)
    ]

    if policy == "query-overlap":
        # steady state: one query costs d symbols; the first query of a
        # partition still pays the full block (pipeline fill).
        symbols_per_partition = block_length + (n_queries - 1) * d
    else:
        symbols_per_partition = n_queries * block_length

    for p in range(n_partitions):
        driver = drivers[p % lanes]
        if p >= lanes or charge_first_configure:
            # each lane's first partition is the "preloaded image" the
            # charge_first_configure flag refers to
            driver.configure(label=f"cfg p{p}")
        stream_op = driver.stream(symbols_per_partition, label=f"stream p{p}")
        driver.decode(reports_per_partition, stream_op, label=f"decode p{p}")
    for driver in drivers:
        driver.synchronize()
    timeline = (
        drivers[0].timeline if lanes == 1
        else Timeline.merged([drv.timeline for drv in drivers])
    )
    return ScheduleResult(
        policy=policy,
        timeline=timeline,
        n_partitions=n_partitions,
        n_queries=n_queries,
        n_workers=lanes,
    )
