"""Zero-copy shared-memory transport for process fan-out.

``backend="process"`` pays for every :class:`~repro.host.parallel.
PartitionTask` twice: the parent pickles the partition's dataset slice
(or its compiled board artifact) into the executor's call pipe, and the
worker unpickles it into a fresh copy — per task, per search.  The
paper's whole premise is keeping data movement off the host bottleneck;
this module restores that premise for the process backend by moving the
*payload* into :mod:`multiprocessing.shared_memory` segments and
shipping only tiny descriptors through the pipe:

* :class:`ShmArrayRef` — ``(segment, offset, shape, dtype)`` naming an
  ndarray that lives in a shared segment.  Workers
  :func:`resolve_array` it into a **view** (no copy, marked read-only
  so a worker bug cannot corrupt a segment other workers read).
* :class:`ShmPickle` — an arbitrary artifact serialized with pickle
  protocol 5: the big contiguous buffers (a functional board's packed
  dataset, say) are hoisted **out of band** into shared memory while
  only the small object skeleton travels as bytes.
  :func:`load_pickled` reassembles the object around zero-copy views.
* :class:`ShmExporter` — the parent-side owner of the segments: a
  bump-pointer arena with identity-based deduplication, so a stable
  payload (an engine's dataset slices, a warm cache's artifacts) is
  copied into shared memory **once per exporter lifetime** no matter
  how many searches fan out through it.  :meth:`ShmExporter.close`
  unlinks every segment; a :func:`weakref.finalize` guard does the
  same if the exporter is dropped (or the interpreter exits) without
  ``close()``, so segments never outlive their owner.

Worker-side attachments go through a process-global ref-counted
:class:`SegmentRegistry`: the first reference to a segment attaches it
(working around the resource-tracker over-registration of attached
segments, gh-82300), later references share the mapping, and a
``weakref.finalize`` on each resolved view releases its reference when
the view dies — the registry drops its handle at refcount zero and the
:class:`~multiprocessing.shared_memory.SharedMemory` destructor unmaps
it.  ``/dev/shm`` residue is therefore bounded by the *creator*: once
the exporter unlinks, the name is gone regardless of worker state.

Platforms without ``multiprocessing.shared_memory`` (or without a
usable ``/dev/shm``) report :func:`shm_available()` → ``False`` and the
parallel layer transparently falls back to the pickle path.

This transport serves *in-memory* (``ArrayStore``) datasets.  Store-
backed datasets go one step further: :class:`~repro.core.dataset.
ShmStore` wraps an exported :class:`ShmArrayRef` behind the
:class:`~repro.core.dataset.PackedDataset` interface, and mmap-backed
datasets skip this module entirely — their tasks carry a
:class:`~repro.core.dataset.DatasetSliceRef` naming the ``.pds`` file,
which workers map themselves (no export step, no segment, no arena
cap), shipping zero dataset bytes through any transport.
"""

from __future__ import annotations

import os
import pickle
import threading
import uuid
import weakref
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any

import numpy as np

try:  # pragma: no cover - import always succeeds on CPython >= 3.8
    from multiprocessing import shared_memory as _shared_memory
except ImportError:  # pragma: no cover
    _shared_memory = None

__all__ = [
    "SHM_SEGMENT_PREFIX",
    "SHM_UNAVAILABLE_REASON",
    "ShmArrayRef",
    "ShmPickle",
    "ShmExporter",
    "SegmentRegistry",
    "shm_available",
    "resolve_array",
    "load_pickled",
]

# Canonical human-readable reason for "shm_available() is False" —
# shared by every test skip (and the conftest skip-count summary) so a
# lane running without shared memory is visibly, consistently labeled.
SHM_UNAVAILABLE_REASON = (
    "multiprocessing.shared_memory unsupported on this platform "
    "(no usable /dev/shm?)"
)

# Segment names are flat (no '/') and include the creating pid so leak
# tests can tell their own residue from another process's segments.
SHM_SEGMENT_PREFIX = "repro_shm"

# Arena segments grow geometrically from this floor so many small
# exports share a few segments instead of spawning one file each.
_MIN_SEGMENT_BYTES = 1 << 20
_ALIGN = 64

_available_lock = threading.Lock()
_available: bool | None = None


def shm_available() -> bool:
    """True when shared-memory segments can actually be created here.

    Probes once (create + close + unlink of a 1-byte segment) and
    memoizes: the import existing is not enough — containers without a
    writable ``/dev/shm`` raise at create time.
    """
    global _available
    with _available_lock:
        if _available is None:
            if _shared_memory is None:
                _available = False
            else:
                try:
                    probe = _shared_memory.SharedMemory(
                        name=_new_segment_name(), create=True, size=1
                    )
                    probe.close()
                    probe.unlink()
                    _available = True
                except (OSError, ValueError):
                    _available = False
        return _available


def _new_segment_name() -> str:
    return f"{SHM_SEGMENT_PREFIX}_{os.getpid()}_{uuid.uuid4().hex[:12]}"


@dataclass(frozen=True)
class ShmArrayRef:
    """Descriptor of an ndarray living in a shared-memory segment.

    A few dozen bytes on the wire regardless of the array's size.  An
    empty array travels as ``segment=""`` (there is nothing to share;
    :func:`resolve_array` materializes it locally).
    """

    segment: str
    offset: int
    shape: tuple
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


@dataclass(frozen=True)
class ShmPickle:
    """A pickle-protocol-5 payload whose big buffers live in shared memory.

    ``payload`` holds only the object skeleton; every out-of-band
    buffer is a :class:`ShmArrayRef` resolved to a zero-copy view at
    load time.  Objects reconstructed this way hold **read-only** views
    of the shared segments.
    """

    payload: bytes
    buffers: tuple[ShmArrayRef, ...]

    @property
    def nbytes(self) -> int:
        """Wire size: skeleton bytes (buffer payloads stay in shm)."""
        return len(self.payload)


# -- worker-side attachment registry ---------------------------------------


def _attach_untracked(name: str):
    """Attach to an existing segment WITHOUT resource-tracker tracking.

    Attaching normally registers the segment as if this process created
    it (gh-82300): under spawn/forkserver the attacher's tracker then
    unlinks it at exit while the creator still needs it, and under fork
    the duplicate (un)registrations make the shared tracker spew
    ``KeyError`` noise at shutdown.  Only the *creator* (the exporter)
    should own tracker state.  Python 3.13+ exposes ``track=False``;
    earlier versions get a scoped no-op patch of the register hook
    (attaches are serialized under the registry lock).
    """
    try:
        return _shared_memory.SharedMemory(name=name, track=False)
    except TypeError:  # pre-3.13: no `track` kwarg
        pass
    from multiprocessing import resource_tracker

    original = resource_tracker.register
    def _no_register(*args, **kwargs):
        return None

    resource_tracker.register = _no_register
    try:
        return _shared_memory.SharedMemory(name=name)
    finally:
        resource_tracker.register = original


class SegmentRegistry:
    """Ref-counted per-process registry of attached segments.

    ``acquire`` attaches (or shares) a segment; ``release`` drops one
    reference.  A handle whose refcount hits zero moves into a small
    FIFO keep-alive pool instead of unmapping immediately: a steady
    stream of tasks resolving views of the same segments (every warm
    search) re-acquires for a dict lookup instead of an
    ``shm_open``+``mmap`` syscall pair per task.  The pool is bounded
    (``keep_alive``), so a worker holds at most that many idle
    mappings; evicted handles unmap via the
    :class:`~multiprocessing.shared_memory.SharedMemory` destructor
    once their last view dies.  Unlinking is never done here: that is
    the creator's (exporter's) job — segment *names* never outlive the
    exporter regardless of what this cache holds mapped.
    """

    DEFAULT_KEEP_ALIVE = 8

    def __init__(self, keep_alive: int = DEFAULT_KEEP_ALIVE):
        # Reentrant: release() runs as a weakref finalizer, and cyclic
        # GC may fire it on the very thread currently holding the lock
        # inside acquire()/release() — a plain Lock would self-deadlock.
        self._lock = threading.RLock()
        self._segments: dict[str, list] = {}  # name -> [shm, refcount]
        self._keep_alive = int(keep_alive)
        self._idle: "OrderedDict[str, Any]" = OrderedDict()  # name -> shm

    def acquire(self, name: str):
        if _shared_memory is None:  # pragma: no cover - guarded by callers
            raise RuntimeError("multiprocessing.shared_memory is unavailable")
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                shm = self._idle.pop(name, None)
                if shm is None:
                    shm = _attach_untracked(name)
                entry = [shm, 0]
                self._segments[name] = entry
            entry[1] += 1
            return entry[0]

    def release(self, name: str) -> None:
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] <= 0:
                del self._segments[name]
                if self._keep_alive > 0:
                    self._idle[name] = entry[0]
                    self._idle.move_to_end(name)
                    while len(self._idle) > self._keep_alive:
                        self._idle.popitem(last=False)

    def __len__(self) -> int:
        """Actively referenced segments (idle keep-alives not counted)."""
        with self._lock:
            return len(self._segments)


_REGISTRY = SegmentRegistry()


def resolve_array(ref: ShmArrayRef, registry: SegmentRegistry | None = None) -> np.ndarray:
    """Zero-copy read-only view of the array a descriptor names.

    The view pins its segment through the registry: a
    ``weakref.finalize`` on the array releases the reference when the
    view is garbage-collected, so segments detach exactly when the last
    consumer is done with them.
    """
    if ref.segment == "":
        out = np.empty(ref.shape, dtype=np.dtype(ref.dtype))
        out.flags.writeable = False
        return out
    registry = registry if registry is not None else _REGISTRY
    shm = registry.acquire(ref.segment)
    try:
        view = np.ndarray(
            ref.shape, dtype=np.dtype(ref.dtype), buffer=shm.buf, offset=ref.offset
        )
    except Exception:
        registry.release(ref.segment)
        raise
    view.flags.writeable = False
    weakref.finalize(view, registry.release, ref.segment)
    return view


def load_pickled(shmp: ShmPickle, registry: SegmentRegistry | None = None) -> Any:
    """Reconstruct an artifact around zero-copy shared-memory buffers."""
    views = [resolve_array(ref, registry) for ref in shmp.buffers]
    return pickle.loads(shmp.payload, buffers=views)


# -- parent-side exporter --------------------------------------------------


@dataclass
class ExporterStats:
    """Accounting for one :class:`ShmExporter`."""

    segments: int = 0
    segment_bytes: int = 0  # total shared-memory capacity created
    arrays_exported: int = 0  # distinct arrays copied into segments
    bytes_exported: int = 0  # payload bytes living in shared memory
    dedupe_hits: int = 0  # exports served by an earlier identical export
    pickles_exported: int = 0


def _cleanup_segments(segments: list) -> None:
    """Finalizer target (must not reference the exporter): unlink and
    close every owned segment, tolerating double-cleanup and races."""
    while segments:
        shm = segments.pop()
        try:
            shm.unlink()
        except (FileNotFoundError, OSError):
            pass
        try:
            shm.close()
        except (BufferError, OSError):
            # A still-referenced memoryview keeps the mapping alive; the
            # SharedMemory destructor closes it when the view dies.  The
            # name is already unlinked, so nothing persists either way.
            pass


class ShmExporter:
    """Parent-side arena of shared-memory segments with deduplication.

    ``export_array`` copies an ndarray into the arena **once** and
    returns its descriptor; re-exporting the same array (same memory,
    shape, and dtype — e.g. an engine's partition slices on every
    search through a persistent pool) returns the cached descriptor
    without touching the data.  ``export_pickled`` does the same for
    whole artifacts via pickle protocol 5 (dedup keyed on object
    identity).  The dedup table holds references to its sources, so a
    pointer is never reused for a different live array.

    ``max_bytes`` bounds the arena: exports beyond it raise
    ``RuntimeError``, which the parallel layer treats like any other
    shm failure — the oversized payload degrades to the pickle path —
    so a persistent config serving rotating datasets can never grow
    shared memory (or the dedup table pinning the sources) without
    bound.  Size it to the stable working set: dataset bytes plus the
    packed functional artifacts (``n·d/8``) of every dataset the pool
    serves.

    Not thread-safe per call — the parallel layer serializes exports
    under the config's pool lock; create one exporter per concurrency
    domain otherwise.
    """

    DEFAULT_MAX_BYTES = 2 << 30  # 2 GiB arena ceiling

    def __init__(self, max_bytes: int | None = None):
        if not shm_available():
            raise RuntimeError("shared memory is not available on this platform")
        if max_bytes is None:
            max_bytes = self.DEFAULT_MAX_BYTES
        if max_bytes < 1:
            raise ValueError("max_bytes must be >= 1")
        self.max_bytes = int(max_bytes)
        self.stats = ExporterStats()
        self._segments: list = []  # SharedMemory handles, newest last
        self._head = 0  # bump pointer into the newest segment
        self._arrays: dict[tuple, tuple] = {}  # id key -> (source, ref)
        self._pickles: dict[int, tuple] = {}  # id(obj) -> (obj, ShmPickle)
        self._lock = threading.Lock()
        self._closed = False
        self._finalizer = weakref.finalize(self, _cleanup_segments, self._segments)

    # -- arena ------------------------------------------------------------

    def _alloc(self, nbytes: int) -> tuple[str, int, memoryview]:
        """Reserve ``nbytes`` (64-byte aligned) in the newest segment,
        growing the arena geometrically when it does not fit."""
        if self._segments:
            seg = self._segments[-1]
            start = (self._head + _ALIGN - 1) & ~(_ALIGN - 1)
            if start + nbytes <= seg.size:
                self._head = start + nbytes
                return seg.name, start, seg.buf[start : start + nbytes]
        if self.stats.segment_bytes + nbytes > self.max_bytes:
            raise RuntimeError(
                f"shm arena would exceed max_bytes={self.max_bytes} "
                f"({self.stats.segment_bytes} allocated, {nbytes} requested)"
            )
        size = max(_MIN_SEGMENT_BYTES, self.stats.segment_bytes, nbytes)
        size = min(size, max(self.max_bytes - self.stats.segment_bytes, nbytes))
        seg = _shared_memory.SharedMemory(
            name=_new_segment_name(), create=True, size=size
        )
        self._segments.append(seg)
        self.stats.segments += 1
        self.stats.segment_bytes += seg.size
        self._head = nbytes
        return seg.name, 0, seg.buf[0:nbytes]

    # -- exports ----------------------------------------------------------

    @staticmethod
    def _identity_key(arr: np.ndarray) -> tuple:
        iface = arr.__array_interface__
        return (iface["data"][0], arr.shape, arr.strides, arr.dtype.str)

    def export_array(self, arr: np.ndarray) -> ShmArrayRef:
        """Place an array in shared memory (or reuse an earlier export)."""
        arr = np.asarray(arr)
        with self._lock:
            if self._closed:
                raise RuntimeError("exporter is closed")
            if arr.nbytes == 0:
                return ShmArrayRef("", 0, arr.shape, arr.dtype.str)
            key = self._identity_key(arr)
            hit = self._arrays.get(key)
            if hit is not None:
                self.stats.dedupe_hits += 1
                return hit[1]
            contig = np.ascontiguousarray(arr)
            name, offset, buf = self._alloc(contig.nbytes)
            dst = np.ndarray(contig.shape, dtype=contig.dtype, buffer=buf)
            dst[...] = contig
            del dst, buf  # drop exported views so close() can unmap
            ref = ShmArrayRef(name, offset, arr.shape, arr.dtype.str)
            # Holding `arr` pins the source memory: its address cannot be
            # recycled for a different array while the dedup entry lives.
            self._arrays[key] = (arr, ref)
            self.stats.arrays_exported += 1
            self.stats.bytes_exported += contig.nbytes
            return ref

    def export_pickled(self, obj: Any) -> ShmPickle:
        """Serialize an artifact with its big buffers hoisted into shm.

        Pickle protocol 5 extracts every contiguous ndarray buffer out
        of band; each lands in the arena (deduplicated like any other
        array) and the skeleton bytes travel in the descriptor.  The
        same *object* (by identity) exports once per exporter lifetime.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("exporter is closed")
            hit = self._pickles.get(id(obj))
            if hit is not None and hit[0] is obj:
                self.stats.dedupe_hits += 1
                return hit[1]
        raw_buffers: list[pickle.PickleBuffer] = []
        payload = pickle.dumps(
            obj, protocol=5, buffer_callback=raw_buffers.append
        )
        refs = []
        for pb in raw_buffers:
            # The flat uint8 view shares the source object's memory, so
            # identity dedup applies across repeated exports even when
            # the skeleton is re-pickled.  (No context manager: the view
            # must outlive this scope inside the dedup table.)
            flat = np.frombuffer(pb.raw(), dtype=np.uint8)
            refs.append(self.export_array(flat))
        shmp = ShmPickle(payload=payload, buffers=tuple(refs))
        with self._lock:
            if not self._closed:
                self._pickles[id(obj)] = (obj, shmp)
                self.stats.pickles_exported += 1
        return shmp

    # -- lifecycle --------------------------------------------------------

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Unlink and release every owned segment (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            self._arrays.clear()
            self._pickles.clear()
        self._finalizer.detach()
        _cleanup_segments(self._segments)

    def __enter__(self) -> "ShmExporter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
