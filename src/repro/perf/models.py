"""Analytic run-time models for every evaluated platform (Tables I/III/IV).

The paper's evaluation mixes measured wall-clock (CPU/GPU), simulated
cycle counts (AP, FPGA), and analytic projections (AP Gen 2, Opt+Ext).
We reproduce the projections with the same modelling procedure, with
per-platform constants calibrated against the published tables (the
calibration residuals are recorded in EXPERIMENTS.md):

* **CPU** (Xeon E5-2620, Cortex A15): linear scan is
  ``t = q (c + n (a + b d))`` — a per-query overhead, a per-candidate
  overhead, and a per-bit XOR/POPCOUNT cost; a and b back out of the
  large-dataset rows of Table IV at better than 2 %.
* **GPU** (Jetson TK1, Titan X): the paper observes GPU time is nearly
  independent of ``d`` ("poor blocking of the binarized data" — the
  1-bit-per-dimension codes make accesses latency-, not
  bandwidth-bound), so ``t = q (c_d + n g)`` with a per-query launch
  overhead ``c_d`` and a per-candidate constant ``g``.
* **FPGA** (Kintex-7): the streaming accelerator is fully pipelined:
  ``t = q (c_d + n d k_bit)`` with ``k_bit ≈ 6.7 ps per candidate bit``
  (≈ 800 candidate bits per 185 MHz cycle across its parallel query
  lanes).  The cycle-level simulator in :mod:`repro.baselines.fpga`
  derives the same throughput from its microarchitecture.
* **AP**: ``t = partitions × (t_reconfig + q d t_cycle)`` with one
  symbol per 7.5 ns cycle.  Per-query time is ``d`` cycles, not the
  full ``2d + L + 3`` block: the host drives non-blocking streams
  (Section IV-B) and the sort phase of one query overlaps the Hamming
  phase of the next board-resident query wave, so steady-state
  throughput is one query per ``d`` symbols.  Single-partition (small
  dataset) runs are preconfigured and pay no reconfiguration.  This
  reproduces Table III/IV AP rows to three significant figures
  (e.g. 1024 × (45 ms + 4096·64·7.5 ns) = 48.09 s vs the published
  48.10 s for Gen 1 kNN-WordEmbed).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..ap.device import GEN1, GEN2, APDeviceSpec
from ..workloads.params import WorkloadParams

__all__ = [
    "PlatformSpec",
    "PLATFORMS",
    "CPUModel",
    "GPUModel",
    "FPGAModel",
    "APModel",
    "XEON",
    "CORTEX_A15",
    "JETSON_TK1",
    "TITAN_X",
    "KINTEX7",
    "AP_PLATFORM",
    "XEON_MODEL",
    "CORTEX_MODEL",
    "JETSON_MODEL",
    "TITANX_MODEL",
    "KINTEX_MODEL",
    "ap_gen1_model",
    "ap_gen2_model",
    "ap_opt_ext_model",
]


@dataclass(frozen=True)
class PlatformSpec:
    """One row of Table I plus the calibrated dynamic power.

    ``dynamic_power_w`` is the load-minus-idle power the paper measures
    with a meter; for the AP it depends on the active workload
    (utilization), so :class:`APModel` carries its own table.
    """

    name: str
    kind: str  # "CPU" | "GPU" | "FPGA" | "AP"
    cores: int | None
    process_nm: int
    clock_mhz: float
    dynamic_power_w: float


XEON = PlatformSpec("Xeon E5-2620", "CPU", 6, 32, 2000, 52.5)
CORTEX_A15 = PlatformSpec("Cortex A15", "CPU", 4, 28, 2300, 8.0)
JETSON_TK1 = PlatformSpec("Jetson TK1", "GPU", 192, 28, 852, 1.2)
TITAN_X = PlatformSpec("Titan X", "GPU", 3072, 28, 1075, 49.4)
KINTEX7 = PlatformSpec("Kintex-7", "FPGA", None, 28, 185, 3.74)
AP_PLATFORM = PlatformSpec("Automata Processor", "AP", 64, 50, 133, 21.0)

PLATFORMS: dict[str, PlatformSpec] = {
    p.name: p for p in (XEON, CORTEX_A15, JETSON_TK1, TITAN_X, KINTEX7, AP_PLATFORM)
}


@dataclass(frozen=True)
class CPUModel:
    """``t = q (c + n (a + b d))`` — FLANN-style multithreaded linear scan."""

    platform: PlatformSpec
    a_s: float  # per-candidate overhead (s)
    b_s: float  # per-candidate-bit cost (s)
    c_s: float  # per-query overhead (s)
    threads: int = 1  # calibration already includes the platform's cores

    def runtime_s(self, n: int, q: int, d: int) -> float:
        return q * (self.c_s + n * (self.a_s + self.b_s * d))

    def single_thread_runtime_s(self, n: int, q: int, d: int) -> float:
        """Single-threaded variant (Table V's baseline normalization)."""
        cores = self.platform.cores or 1
        return self.runtime_s(n, q, d) * cores


@dataclass(frozen=True)
class GPUModel:
    """``t = q (c_d + n g)`` — latency-bound batched xor/popcount kernel."""

    platform: PlatformSpec
    launch_overhead_s: dict[int, float]  # per-query overhead by dimensionality
    default_overhead_s: float
    per_candidate_s: float
    per_candidate_bit_s: float = 0.0  # small d-dependence (Titan X)

    def runtime_s(self, n: int, q: int, d: int) -> float:
        c = self.launch_overhead_s.get(d, self.default_overhead_s)
        g = self.per_candidate_s + self.per_candidate_bit_s * d
        return q * (c + n * g)


@dataclass(frozen=True)
class FPGAModel:
    """``t = q (c_d + n d k)`` — fully pipelined streaming accelerator."""

    platform: PlatformSpec
    per_bit_s: float
    setup_overhead_s: dict[int, float]
    default_setup_s: float

    def runtime_s(self, n: int, q: int, d: int) -> float:
        c = self.setup_overhead_s.get(d, self.default_setup_s)
        return q * (c + n * d * self.per_bit_s)


@dataclass(frozen=True)
class APModel:
    """AP run-time/energy model for any generation and optimization level.

    ``speedup_factor`` folds in the compounded optimization/extension
    gains of Table VIII (1.0 for the plain design); the corresponding
    ``power_factor`` is the technology-scaling density penalty the paper
    applies when projecting Opt+Ext energy (Section VII-D).
    """

    device: APDeviceSpec = GEN1
    speedup_factor: float = 1.0
    power_factor: float = 1.0
    # Dynamic power calibrated per dimensionality from Table III energy
    # rows (power grows with board utilization).
    dynamic_power_w: dict = field(
        default_factory=lambda: {64: 18.8, 128: 23.3, 256: 23.3}
    )
    default_power_w: float = 21.0

    def runtime_s(
        self, n: int, q: int, d: int, board_capacity: int
    ) -> float:
        partitions = -(-n // board_capacity)
        per_partition = q * d * self.device.cycle_time_s
        if partitions == 1:
            total = per_partition  # preconfigured board, no reconfiguration
        else:
            total = partitions * (
                self.device.reconfiguration_latency_s + per_partition
            )
        return total / self.speedup_factor

    def power_w(self, d: int) -> float:
        return self.dynamic_power_w.get(d, self.default_power_w) * self.power_factor

    def runtime_for(self, workload: WorkloadParams, n: int, q: int) -> float:
        return self.runtime_s(n, q, workload.d, workload.board_capacity)


def ap_gen1_model() -> APModel:
    return APModel(device=GEN1)


def ap_gen2_model() -> APModel:
    return APModel(device=GEN2)


def ap_opt_ext_model(total_improvement: float, tech_scaling: float = 3.19) -> APModel:
    """Opt+Ext projection: Gen 2 divided by the Table VIII compounded gain.

    Energy efficiency improves by ``total_improvement / tech_scaling``
    because the added compute density costs proportional power
    (Section VII-D: ~73x performance but only ~23x energy).
    """
    return APModel(
        device=GEN2,
        speedup_factor=total_improvement,
        power_factor=tech_scaling,
    )


# Calibrated instances (constants back-solved from Tables III and IV;
# see the module docstring and EXPERIMENTS.md for the residuals).
XEON_MODEL = CPUModel(XEON, a_s=1.51e-9, b_s=4.88e-11, c_s=0.95e-6)
CORTEX_MODEL = CPUModel(CORTEX_A15, a_s=4.15e-9, b_s=3.32e-10, c_s=0.0)
JETSON_MODEL = GPUModel(
    JETSON_TK1,
    launch_overhead_s={64: 26.8e-6, 128: 34.2e-6, 256: 37.2e-6},
    default_overhead_s=33e-6,
    per_candidate_s=3.82e-9,
)
TITANX_MODEL = GPUModel(
    TITAN_X,
    launch_overhead_s={},
    default_overhead_s=2e-6,
    per_candidate_s=2.28e-10,
    per_candidate_bit_s=4.05e-14,
)
KINTEX_MODEL = FPGAModel(
    KINTEX7,
    per_bit_s=6.72e-12,
    setup_overhead_s={64: 20e-9, 128: 40e-9, 256: 180e-9},
    default_setup_s=50e-9,
)
