"""Process-wide metrics registry and per-request trace context.

The observability plane for the serving stack.  Three primitives —
:class:`Counter`, :class:`Gauge`, :class:`Histogram` (fixed log-scale
buckets) — live in a :class:`MetricsRegistry`; every layer of the stack
(admission router, pinned rings, board-image cache, RPC clients,
replica groups, shard servers) increments them at the same sites that
already feed the ad-hoc ``*Result`` diagnostic fields, so the registry
is the one source of truth for queue depths, coalescing ratios,
dispatch latencies, cache hits, failovers, and hedges.

Design contract — **attach-only, zero hot path**:

* Instrumentation never changes results (the bit-identity invariant
  holds with the registry enabled, disabled, or absent).
* A disabled registry costs a handful of attribute loads and integer
  compares per call site: every mutating method starts with
  ``if not self._registry.enabled: return``.  ``bench_observability.py``
  gates the enabled-vs-disabled overhead on the functional hot path
  at <2%.
* Counters/gauges are deterministic: two identical serial runs produce
  identical counter values (gated in the same bench).  Histogram
  *bucket* placement of wall-clock timings is inherently
  non-deterministic; the determinism gate covers counters and gauges.

Naming scheme (see README "Observability"): ``repro_<component>_<what>``
with Prometheus unit suffixes (``_seconds``, ``_bytes``, ``_total`` for
counters).  Label keys are fixed per metric at registration; the CI
``metrics-contract`` step diffs ``MetricsSnapshot.schema()`` against
``benchmarks/baselines/metrics_schema.json`` so renaming or dropping a
metric fails the PR the way a perf regression does.

Trace context: :func:`trace_request` opens a per-request
:class:`Trace`; :func:`stage` stamps ``admission -> dispatch ->
execute -> merge`` stage timings as :class:`Span`\\ s on the active
trace *and* into the ``repro_stage_duration_seconds{stage=...}``
histogram.  With no active trace and a disabled registry, ``stage`` is
a no-op that never reads the clock.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import math
import threading
import time
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "MetricsSnapshot",
    "MetricsServer",
    "Span",
    "Trace",
    "current_trace",
    "default_bytes_buckets",
    "default_time_buckets",
    "get_registry",
    "set_enabled",
    "stage",
    "stage_histogram",
    "start_metrics_server",
    "fetch_snapshot",
    "validate_schema",
    "trace_request",
]


# -- bucket layouts --------------------------------------------------------


def default_time_buckets() -> tuple[float, ...]:
    """1-2-5 log-scale bounds from 1 microsecond to 10 seconds.

    22 finite bounds; observations above the last land in the implicit
    +Inf overflow bucket.  Chosen so one layout covers everything the
    stack times — ring dispatch (~50 us), batch linger (~ms), RPC
    round trips (~ms-s), drains (~s).
    """
    return tuple(
        round(m * 10.0**e, 12) for e in range(-6, 1) for m in (1.0, 2.5, 5.0)
    ) + (10.0,)


def default_bytes_buckets() -> tuple[float, ...]:
    """Powers of 4 from 64 B to 1 GiB (13 bounds)."""
    return tuple(float(64 * 4**i) for i in range(13))


def _validate_name(name: str) -> str:
    if not name or not all(c.isalnum() or c == "_" for c in name):
        raise ValueError(f"invalid metric name {name!r}")
    if name[0].isdigit():
        raise ValueError(f"metric name may not start with a digit: {name!r}")
    return name


def _escape_label(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _fmt(value: float) -> str:
    """Prometheus sample value: integers render without a trailing .0."""
    if isinstance(value, float) and value.is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


class _Metric:
    """Shared machinery: fixed label keys, per-metric lock, series map."""

    kind = "untyped"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
    ):
        self._registry = registry
        self.name = _validate_name(name)
        self.help = help
        self.labelnames = tuple(labelnames)
        for ln in self.labelnames:
            _validate_name(ln)
        self._lock = threading.Lock()
        self._series: dict[tuple[str, ...], object] = {}

    def labels(self, *values: str, **kw: str):
        """The child series for one label-value tuple (created on first use).

        Children are cached: capture the child once outside a hot loop
        and call its mutators directly.
        """
        if kw:
            if values:
                raise ValueError("pass label values positionally or by name")
            try:
                values = tuple(kw[ln] for ln in self.labelnames)
            except KeyError as exc:
                raise ValueError(f"unknown label {exc} for {self.name}") from exc
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, got {values!r}"
            )
        key = tuple(str(v) for v in values)
        with self._lock:
            child = self._series.get(key)
            if child is None:
                child = self._make_child()
                self._series[key] = child
        return child

    def _make_child(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def _default_child(self):
        """The unlabeled series (only valid when labelnames is empty)."""
        return self.labels()

    def _reset(self) -> None:
        with self._lock:
            for child in self._series.values():
                child._zero()  # type: ignore[attr-defined]

    def _collect(self) -> list[dict]:
        with self._lock:
            return [
                {"labels": dict(zip(self.labelnames, key)), **child._values()}  # type: ignore[attr-defined]
                for key, child in sorted(self._series.items())
            ]


class _CounterChild:
    __slots__ = ("_lock", "_registry", "value")

    def __init__(self, lock: threading.Lock, registry: "MetricsRegistry"):
        self._lock = lock
        self._registry = registry
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self.value += amount

    def _zero(self) -> None:
        self.value = 0.0

    def _values(self) -> dict:
        return {"value": self.value}


class Counter(_Metric):
    """Monotonic counter.  ``inc()`` on the metric hits the () series."""

    kind = "counter"

    def _make_child(self) -> _CounterChild:
        return _CounterChild(self._lock, self._registry)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)


class _GaugeChild:
    __slots__ = ("_lock", "_registry", "value")

    def __init__(self, lock: threading.Lock, registry: "MetricsRegistry"):
        self._lock = lock
        self._registry = registry
        self.value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def _zero(self) -> None:
        self.value = 0.0

    def _values(self) -> dict:
        return {"value": self.value}


class Gauge(_Metric):
    """Settable value (queue depth, in-flight requests, breaker state)."""

    kind = "gauge"

    def _make_child(self) -> _GaugeChild:
        return _GaugeChild(self._lock, self._registry)

    def set(self, value: float) -> None:
        self._default_child().set(value)

    def inc(self, amount: float = 1.0) -> None:
        self._default_child().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._default_child().dec(amount)


class _HistogramChild:
    __slots__ = ("_lock", "_registry", "_bounds", "buckets", "sum", "count")

    def __init__(
        self,
        lock: threading.Lock,
        registry: "MetricsRegistry",
        bounds: tuple[float, ...],
    ):
        self._lock = lock
        self._registry = registry
        self._bounds = bounds
        # len(bounds)+1 slots: one per finite bound plus the +Inf overflow.
        self.buckets = [0] * (len(bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        """Record one observation.

        Edge semantics (test-covered):

        * NaN and negative values clamp to 0.0 — a monotonic-clock
          duration can legally be 0 but never negative, so a negative
          input is a measurement artifact, not a signal.
        * ``+inf`` lands in the overflow bucket and increments
          ``count`` but leaves ``sum`` unchanged, keeping the export
          JSON-serializable and finite.
        """
        if not self._registry.enabled:
            return
        v = float(value)
        if math.isnan(v) or v < 0.0:
            v = 0.0
        with self._lock:
            self.count += 1
            if math.isinf(v):
                self.buckets[-1] += 1
            else:
                self.buckets[bisect_left(self._bounds, v)] += 1
                self.sum += v

    def observe_many(self, values: Iterable[float]) -> None:
        for v in values:
            self.observe(v)

    def _zero(self) -> None:
        self.buckets = [0] * len(self.buckets)
        self.sum = 0.0
        self.count = 0

    def _values(self) -> dict:
        return {
            "buckets": list(self.buckets),
            "sum": self.sum,
            "count": self.count,
        }


class Histogram(_Metric):
    """Fixed-bucket log-scale histogram (Prometheus cumulative on export)."""

    kind = "histogram"

    def __init__(
        self,
        registry: "MetricsRegistry",
        name: str,
        help: str,
        labelnames: Sequence[str] = (),
        buckets: Sequence[float] | None = None,
    ):
        super().__init__(registry, name, help, labelnames)
        bounds = tuple(float(b) for b in (buckets or default_time_buckets()))
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram buckets must be strictly increasing")
        if any(math.isinf(b) or math.isnan(b) for b in bounds):
            raise ValueError("bucket bounds must be finite (+Inf is implicit)")
        self.bounds = bounds

    def _make_child(self) -> _HistogramChild:
        return _HistogramChild(self._lock, self._registry, self.bounds)

    def observe(self, value: float) -> None:
        self._default_child().observe(value)

    def observe_many(self, values: Iterable[float]) -> None:
        self._default_child().observe_many(values)


# -- snapshot / export -----------------------------------------------------


@dataclass
class MetricsSnapshot:
    """A point-in-time copy of every registered series.

    ``metrics`` is sorted by name; series within a metric are sorted by
    label values — two snapshots of identical registry state serialize
    to identical JSON (the determinism gate relies on this).
    """

    metrics: list[dict] = field(default_factory=list)

    def to_json(self, indent: int | None = None) -> str:
        return json.dumps({"metrics": self.metrics}, indent=indent, sort_keys=True)

    def schema(self) -> list[dict]:
        """The contract view: names, types, label key sets — no values."""
        return [
            {
                "name": m["name"],
                "type": m["type"],
                "labels": sorted(m["labelnames"]),
            }
            for m in self.metrics
        ]

    def get(self, name: str, **labels: str) -> dict | None:
        """The series dict for ``name`` with exactly ``labels``, or None."""
        for m in self.metrics:
            if m["name"] != name:
                continue
            for s in m["series"]:
                if s["labels"] == labels:
                    return s
        return None

    def value(self, name: str, **labels: str) -> float | None:
        """Counter/gauge value shortcut (None when the series is absent)."""
        s = self.get(name, **labels)
        return None if s is None or "value" not in s else s["value"]

    def counter_values(self) -> dict[str, float]:
        """Flat ``name{k=v,...} -> value`` map of every counter and gauge.

        The determinism gate compares this across runs; histogram
        timings are excluded by construction.
        """
        out: dict[str, float] = {}
        for m in self.metrics:
            if m["type"] not in ("counter", "gauge"):
                continue
            for s in m["series"]:
                lbl = ",".join(f"{k}={v}" for k, v in sorted(s["labels"].items()))
                out[f"{m['name']}{{{lbl}}}"] = s["value"]
        return out

    def to_prometheus(self) -> str:
        """Prometheus text exposition format (version 0.0.4)."""
        lines: list[str] = []
        for m in self.metrics:
            name = m["name"]
            lines.append(f"# HELP {name} {m['help']}")
            lines.append(f"# TYPE {name} {m['type']}")
            for s in m["series"]:
                base = [
                    f'{k}="{_escape_label(str(v))}"'
                    for k, v in s["labels"].items()
                ]
                if m["type"] == "histogram":
                    acc = 0
                    for bound, n in zip(
                        list(m["buckets"]) + ["+Inf"], s["buckets"]
                    ):
                        acc += n
                        le = "+Inf" if bound == "+Inf" else _fmt(float(bound))
                        lbl = ",".join(base + [f'le="{le}"'])
                        lines.append(f"{name}_bucket{{{lbl}}} {acc}")
                    suffix = f"{{{','.join(base)}}}" if base else ""
                    lines.append(f"{name}_sum{suffix} {_fmt(s['sum'])}")
                    lines.append(f"{name}_count{suffix} {s['count']}")
                else:
                    suffix = f"{{{','.join(base)}}}" if base else ""
                    lines.append(f"{name}{suffix} {_fmt(s['value'])}")
        return "\n".join(lines) + "\n"


# -- registry --------------------------------------------------------------


class MetricsRegistry:
    """Process-wide metric home.  Registration is idempotent by name."""

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._lock = threading.Lock()
        self._metrics: dict[str, _Metric] = {}

    def set_enabled(self, enabled: bool) -> None:
        self.enabled = bool(enabled)

    def _register(self, cls, name: str, help: str, labelnames, **kw) -> _Metric:
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                if type(existing) is not cls or existing.labelnames != tuple(
                    labelnames
                ):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{type(existing).__name__}{existing.labelnames}"
                    )
                return existing
            metric = cls(self, name, help, labelnames, **kw)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", labelnames=()) -> Counter:
        return self._register(Counter, name, help, labelnames)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "", labelnames=()) -> Gauge:
        return self._register(Gauge, name, help, labelnames)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        labelnames=(),
        buckets: Sequence[float] | None = None,
    ) -> Histogram:
        return self._register(
            Histogram, name, help, labelnames, buckets=buckets
        )  # type: ignore[return-value]

    def reset(self) -> None:
        """Zero every series; registrations (names/labels/buckets) stay."""
        with self._lock:
            metrics = list(self._metrics.values())
        for m in metrics:
            m._reset()

    def snapshot(self) -> MetricsSnapshot:
        with self._lock:
            metrics = sorted(self._metrics.items())
        out = []
        for name, m in metrics:
            entry: dict = {
                "name": name,
                "type": m.kind,
                "help": m.help,
                "labelnames": list(m.labelnames),
                "series": m._collect(),
            }
            if isinstance(m, Histogram):
                entry["buckets"] = list(m.bounds)
            out.append(entry)
        return MetricsSnapshot(out)


_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry every layer instruments against."""
    return _REGISTRY


def set_enabled(enabled: bool) -> None:
    _REGISTRY.set_enabled(enabled)


# -- trace context ---------------------------------------------------------


@dataclass
class Span:
    """One stage timing inside a request trace."""

    stage: str
    start_s: float
    duration_s: float


class Trace:
    """Per-request span collector.

    Spans also feed ``repro_stage_duration_seconds{stage=...}`` so the
    aggregate histogram exists even when nobody keeps the trace object.
    """

    def __init__(self, name: str, registry: MetricsRegistry | None = None):
        self.name = name
        self.registry = registry or get_registry()
        self.spans: list[Span] = []
        self._lock = threading.Lock()

    def record(self, stage_name: str, start_s: float, duration_s: float) -> None:
        with self._lock:
            self.spans.append(Span(stage_name, start_s, duration_s))
        _stage_histogram(self.registry).labels(stage=stage_name).observe(
            duration_s
        )

    @contextlib.contextmanager
    def stage(self, stage_name: str) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.record(stage_name, t0, time.perf_counter() - t0)

    def to_dict(self) -> dict:
        with self._lock:
            spans = list(self.spans)
        return {
            "name": self.name,
            "spans": [
                {"stage": s.stage, "start_s": s.start_s, "duration_s": s.duration_s}
                for s in spans
            ],
        }


def stage_histogram(registry: MetricsRegistry | None = None) -> Histogram:
    """The shared ``repro_stage_duration_seconds{stage=...}`` histogram."""
    return (registry or get_registry()).histogram(
        "repro_stage_duration_seconds",
        "Per-request stage timings (admission -> dispatch -> execute -> merge).",
        labelnames=("stage",),
    )


_stage_histogram = stage_histogram


_current_trace: contextvars.ContextVar[Trace | None] = contextvars.ContextVar(
    "repro_current_trace", default=None
)


def current_trace() -> Trace | None:
    return _current_trace.get()


@contextlib.contextmanager
def trace_request(name: str) -> Iterator[Trace]:
    """Open a per-request trace; nested :func:`stage` calls attach to it."""
    trace = Trace(name)
    token = _current_trace.set(trace)
    try:
        yield trace
    finally:
        _current_trace.reset(token)


@contextlib.contextmanager
def stage(stage_name: str) -> Iterator[None]:
    """Time a pipeline stage against the active trace (or just the
    aggregate histogram when no trace is open).

    With no active trace *and* a disabled registry this never reads the
    clock — the zero-hot-path contract.
    """
    trace = _current_trace.get()
    if trace is None:
        registry = get_registry()
        if not registry.enabled:
            yield
            return
        t0 = time.perf_counter()
        try:
            yield
        finally:
            _stage_histogram(registry).labels(stage=stage_name).observe(
                time.perf_counter() - t0
            )
        return
    with trace.stage(stage_name):
        yield


# -- HTTP exporter ---------------------------------------------------------


class MetricsServer:
    """Tiny stdlib HTTP exporter: ``/metrics`` (Prometheus text),
    ``/metrics.json`` (snapshot JSON).  Daemon-threaded; close() joins."""

    def __init__(self, port: int, registry: MetricsRegistry | None = None,
                 host: str = "0.0.0.0"):
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        reg = registry or get_registry()

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(self) -> None:  # noqa: N802 (stdlib API)
                path = self.path.split("?", 1)[0]
                if path in ("/metrics", "/"):
                    body = reg.snapshot().to_prometheus().encode()
                    ctype = "text/plain; version=0.0.4; charset=utf-8"
                elif path == "/metrics.json":
                    body = reg.snapshot().to_json(indent=2).encode()
                    ctype = "application/json"
                else:
                    self.send_error(404)
                    return
                self.send_response(200)
                self.send_header("Content-Type", ctype)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def log_message(self, *args) -> None:  # silence per-request lines
                pass

        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="repro-metrics-http",
            daemon=True,
        )
        self._thread.start()

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)

    def __enter__(self) -> "MetricsServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def start_metrics_server(
    port: int, registry: MetricsRegistry | None = None, host: str = "0.0.0.0"
) -> MetricsServer:
    """Start the exporter on ``port`` (0 picks an ephemeral port)."""
    return MetricsServer(port, registry=registry, host=host)


def fetch_snapshot(address: str, timeout_s: float = 5.0) -> dict:
    """GET ``/metrics.json`` from a ``host:port`` exporter (CLI helper)."""
    from urllib.request import urlopen

    if "://" not in address:
        address = f"http://{address}"
    with urlopen(f"{address}/metrics.json", timeout=timeout_s) as resp:
        return json.loads(resp.read().decode())


# -- schema contract helpers ----------------------------------------------


def validate_schema(
    snapshot_schema: Sequence[Mapping], baseline_schema: Sequence[Mapping]
) -> list[str]:
    """Diff a live schema against the committed contract.

    Returns human-readable violation strings (empty = contract holds).
    *New* metrics are allowed — the contract protects consumers of
    existing names; additions only require re-running ``--update``.
    """
    problems: list[str] = []
    live = {m["name"]: m for m in snapshot_schema}
    for want in baseline_schema:
        name = want["name"]
        got = live.get(name)
        if got is None:
            problems.append(f"metric {name!r} missing (renamed or dropped)")
            continue
        if got["type"] != want["type"]:
            problems.append(
                f"metric {name!r} changed type "
                f"{want['type']!r} -> {got['type']!r}"
            )
        if sorted(got["labels"]) != sorted(want["labels"]):
            problems.append(
                f"metric {name!r} changed labels "
                f"{sorted(want['labels'])} -> {sorted(got['labels'])}"
            )
    return problems
