"""Data-movement analysis: the paper's Section I motivation, quantified.

"kNN is memory bound in both CPUs and GPUs.  Distance calculations are
relatively cheap and task parallel but moving feature vector data from
memory to the compute device is a huge bottleneck.  Moreover, this data
is used only once per kNN query and discarded, and the result of a kNN
query is only a handful of identifiers."

This module computes, per platform, the bytes that must cross the
critical interface for one query batch:

* **von Neumann** (CPU/GPU/FPGA): every candidate's packed code crosses
  the memory interface once per batch (ideal blocking) — ``n·d/8``
  bytes per pass — while the *useful output* is ``k`` identifiers.
* **AP**: the dataset never moves after configuration; per query only
  the query itself flows in (``d`` symbol bytes) and the reports flow
  out (8 bytes each; ``n`` reports for the plain design, ``n/(p/k')``
  with activation reduction, ``k``-ish with range/threshold filtering).

The *data amplification* ratio — bytes moved per byte of useful result —
is the figure of merit; the benchmark prints it for the paper's
workloads.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["MovementProfile", "von_neumann_profile", "ap_profile"]


@dataclass(frozen=True)
class MovementProfile:
    """Bytes over the critical interface for one query batch."""

    label: str
    bytes_in: float  # toward the compute (dataset or queries)
    bytes_out: float  # results/reports back
    useful_bytes: float  # k identifiers per query (the actual answer)

    @property
    def total_bytes(self) -> float:
        return self.bytes_in + self.bytes_out

    @property
    def amplification(self) -> float:
        """Bytes moved per byte of useful result (lower is better)."""
        if self.useful_bytes == 0:
            return float("inf")
        return self.total_bytes / self.useful_bytes


_ID_BYTES = 4  # a neighbor identifier
_REPORT_BYTES = 8  # 32-bit ID + 32-bit offset (Section VI-C)


def von_neumann_profile(
    n: int, d: int, q: int, k: int, passes: float = 1.0, label: str = "CPU/GPU"
) -> MovementProfile:
    """Dataset streamed over the memory interface ``passes`` times.

    ``passes = 1`` models perfect query batching (the FPGA accelerator
    streams vectors "once per batch of queries"); unbatched designs pay
    ``passes = q / batch``.
    """
    if min(n, d, q, k) < 1 or passes <= 0:
        raise ValueError("all parameters must be positive")
    dataset_bytes = n * d / 8 * passes
    query_bytes = q * d / 8
    return MovementProfile(
        label=label,
        bytes_in=dataset_bytes + query_bytes,
        bytes_out=q * k * _ID_BYTES,
        useful_bytes=q * k * _ID_BYTES,
    )


def ap_profile(
    n: int,
    d: int,
    q: int,
    k: int,
    reports_per_query: float | None = None,
    configurations: int = 1,
    label: str = "AP",
) -> MovementProfile:
    """Near-data profile: queries in, reports out, dataset moved only at
    (re)configuration time (counted as ``configurations`` dataset loads).
    """
    if min(n, d, q, k) < 1 or configurations < 0:
        raise ValueError("all parameters must be positive")
    if reports_per_query is None:
        reports_per_query = float(n)  # the plain all-report design
    config_bytes = configurations * n * d / 8
    query_bytes = q * (d + 4)  # one 8-bit symbol per dimension + framing
    return MovementProfile(
        label=label,
        bytes_in=config_bytes + query_bytes,
        bytes_out=q * reports_per_query * _REPORT_BYTES,
        useful_bytes=q * k * _ID_BYTES,
    )
