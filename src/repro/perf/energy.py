"""Energy-efficiency accounting (queries/Joule, Tables III and IV).

The paper's procedure (Section IV): measure dynamic power with a meter
(load minus idle), multiply by run time for energy, report queries per
Joule, and linearly scale the AP's 50 nm lithography to the baselines'
28 nm.  The calibrated :data:`~repro.perf.models.PlatformSpec` powers
already reflect the published (post-scaling) numbers; this module keeps
the arithmetic and the explicit scaling helper.
"""

from __future__ import annotations

__all__ = [
    "energy_joules",
    "queries_per_joule",
    "lithography_scale_factor",
    "utilization_scaled_power",
]


def energy_joules(dynamic_power_w: float, runtime_s: float) -> float:
    """Energy = dynamic power × run time (the paper's estimator)."""
    if dynamic_power_w < 0 or runtime_s < 0:
        raise ValueError("power and runtime must be non-negative")
    return dynamic_power_w * runtime_s


def queries_per_joule(n_queries: int, dynamic_power_w: float, runtime_s: float) -> float:
    """The paper's energy-efficiency metric (higher is better)."""
    e = energy_joules(dynamic_power_w, runtime_s)
    if e == 0:
        return float("inf")
    return n_queries / e


def lithography_scale_factor(from_nm: float, to_nm: float) -> float:
    """Linear lithography normalization (Section IV-B / Table VIII).

    The paper scales the 50 nm AP to 28 nm competitors with linear
    factors; Table VIII's "Technology Scaling 3.19x" is the combined
    density/speed gain of that shrink (≈ (50/28)^2 = 3.19).
    """
    if from_nm <= 0 or to_nm <= 0:
        raise ValueError("process nodes must be positive")
    return (from_nm / to_nm) ** 2


def utilization_scaled_power(
    utilization: float,
    idle_w: float = 14.98,
    per_utilization_w: float = 9.15,
) -> float:
    """AP dynamic power as a linear function of board utilization.

    Dynamic power tracks switching activity, which tracks how much of
    the board holds active automata.  The defaults are the line through
    the two powers implied by the paper's Table III energies:
    kNN-WordEmbed (41.7 % utilization -> 18.8 W) and kNN-SIFT (90.9 % ->
    23.3 W); kNN-TagSpace (78.6 %) then predicts 22.2 W against the
    implied 23.3 W — a 5 % residual.  This is the first-principles
    companion to the per-dimensionality power table in
    :class:`repro.perf.models.APModel`.
    """
    if not 0.0 <= utilization <= 1.0:
        raise ValueError("utilization must be in [0, 1]")
    return idle_w + per_utilization_w * utilization
