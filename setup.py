"""Legacy setup shim: lets `pip install -e .` work without the `wheel`
package (this environment is offline; PEP 517 editable builds need
bdist_wheel).  All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
