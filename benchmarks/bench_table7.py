"""E8 — Table VII: STE decomposition resource savings.

The paper's analytical model: an 8-input STE decomposed into ``x``
smaller LUTs packs the low-discrimination states of the kNN macro
(wildcards need 0 symbol bits, 0/1 match states 2, over the stream's
restricted alphabet), with a residue of control states that stay whole.

    x:            1     2      4      8      16     32
    WordEmbed     1x    1.98x  3.86x  7.38x  13.56x 23.34x
    SIFT          1x    1.99x  3.93x  7.67x  14.68x 27.00x
    TagSpace      1x    1.99x  3.96x  7.83x  15.31x 29.26x
"""

import pytest

from repro.ap.extensions import ste_decomposition_table

PAPER_TABLE7 = {
    64: {1: 1.0, 2: 1.98, 4: 3.86, 8: 7.38, 16: 13.56, 32: 23.34},
    128: {1: 1.0, 2: 1.99, 4: 3.93, 8: 7.67, 16: 14.68, 32: 27.00},
    256: {1: 1.0, 2: 1.99, 4: 3.96, 8: 7.83, 16: 15.31, 32: 29.26},
}
NAMES = {64: "WordEmbed", 128: "SIFT", 256: "TagSpace"}


def test_table7(benchmark, report):
    table = benchmark(ste_decomposition_table)
    rows = []
    for d in (64, 128, 256):
        rows.append(
            [NAMES[d]]
            + [f"{table[d][x]:.2f}/{PAPER_TABLE7[d][x]:.2f}"
               for x in (1, 2, 4, 8, 16, 32)]
        )
    rows.append(["Theoretical"] + [f"{x}x" for x in (1, 2, 4, 8, 16, 32)])
    report(
        "Table VII: STE decomposition savings (model/paper)",
        ["Workload", "x=1", "x=2", "x=4", "x=8", "x=16", "x=32"],
        rows,
    )
    for d, row in PAPER_TABLE7.items():
        for x, paper in row.items():
            assert table[d][x] == pytest.approx(paper, rel=0.08), (d, x)
            assert table[d][x] <= x + 1e-9  # never beats the theoretical bound
