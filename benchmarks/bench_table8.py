"""E9 — Table VIII: compounded gains from optimizations + extensions.

The paper compounds four mutually orthogonal factors (50 nm -> 28 nm
technology scaling, vector packing into groups of 4, 4x STE
decomposition, 8-input counter increments):

    factor                WordEmbed  SIFT    TagSpace
    Technology Scaling    3.19x      3.19x   3.19x
    Vector Packing        2.93x      3.28x   3.31x
    STE Decomposition     3.86x      3.93x   3.96x
    Counter Increment     1.75x      1.75x   1.75x
    Total                 63.14x     71.96x  73.17x

and notes energy only improves by up to ~23x (the density power cost).
"""

import pytest

from repro.ap.extensions import compounded_gains

PAPER_TABLE8 = {
    64: dict(tech=3.19, pack=2.93, dec=3.86, ci=1.75, total=63.14),
    128: dict(tech=3.19, pack=3.28, dec=3.93, ci=1.75, total=71.96),
    256: dict(tech=3.19, pack=3.31, dec=3.96, ci=1.75, total=73.17),
}
NAMES = {64: "kNN-WordEmbed", 128: "kNN-SIFT", 256: "kNN-TagSpace"}


def test_table8(benchmark, report):
    gains = benchmark(
        lambda: {d: compounded_gains(d) for d in (64, 128, 256)}
    )
    rows = []
    for label, attr, key in [
        ("Technology Scaling", "technology_scaling", "tech"),
        ("Vector Packing", "vector_packing", "pack"),
        ("STE Decomposition", "ste_decomposition", "dec"),
        ("Counter Increment Ext.", "counter_increment", "ci"),
        ("Total Improvement", "total", "total"),
    ]:
        rows.append(
            [label]
            + [f"{getattr(gains[d], attr):.2f}/{PAPER_TABLE8[d][key]:.2f}"
               for d in (64, 128, 256)]
        )
    rows.append(
        ["Energy improvement"]
        + [f"{gains[d].energy_improvement:.1f}x (paper: up to 23x)"
           for d in (64, 128, 256)]
    )
    report(
        "Table VIII: compounded gains (model/paper)",
        ["Factor", NAMES[64], NAMES[128], NAMES[256]],
        rows,
    )
    for d, paper in PAPER_TABLE8.items():
        g = gains[d]
        assert g.technology_scaling == pytest.approx(paper["tech"], abs=0.01)
        assert g.counter_increment == pytest.approx(paper["ci"], abs=0.01)
        assert g.ste_decomposition == pytest.approx(paper["dec"], rel=0.05)
        assert g.vector_packing == pytest.approx(paper["pack"], rel=0.16)
        assert g.total == pytest.approx(paper["total"], rel=0.20)
        assert g.energy_improvement == pytest.approx(23.0, rel=0.15)
