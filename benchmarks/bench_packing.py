"""E10 — Fig. 5 + Section VI-A: vector packing.

Times the packed-ladder simulation, verifies functional equivalence
against the unpacked design, reports the analytical savings model next
to the Table VIII numbers, and shows the routing-pressure outcome the
paper observed on Gen 1 tooling (placed but only partially routed).
"""

import numpy as np
import pytest

from repro.ap.compiler import APCompiler
from repro.automata.simulator import CompiledSimulator
from repro.core.macros import build_knn_network
from repro.core.packing import build_packed_network, packing_savings
from repro.core.stream import StreamLayout, encode_query_batch

PAPER_PACKING = {64: 2.93, 128: 3.28, 256: 3.31}


def test_packing_savings_model(benchmark, report):
    got = benchmark(lambda: {d: packing_savings(d, 4) for d in (64, 128, 256)})
    rows = [
        [f"d={d}", f"{got[d]:.2f}x", f"{PAPER_PACKING[d]:.2f}x"]
        for d in (64, 128, 256)
    ]
    report(
        "Vector packing savings, groups of 4 (analytical model vs Table VIII)",
        ["Workload dim", "Model", "Paper"],
        rows,
    )
    for d, paper in PAPER_PACKING.items():
        assert got[d] == pytest.approx(paper, rel=0.16)


def test_packed_simulation(benchmark, report):
    rng = np.random.default_rng(17)
    data = rng.integers(0, 2, (16, 16), dtype=np.uint8)
    queries = rng.integers(0, 2, (4, 16), dtype=np.uint8)
    netP, hP = build_packed_network(data, group_size=4)
    layP = StreamLayout(16, hP[0].collector_depth)
    simP = CompiledSimulator(netP)
    stream = encode_query_batch(queries, layP)

    res = benchmark(simP.run, stream)

    netU, hU = build_knn_network(data)
    layU = StreamLayout(16, hU[0].collector_depth)
    resU = CompiledSimulator(netU).run(encode_query_batch(queries, layU))
    identical = sorted((r.cycle, r.code) for r in res.reports) == sorted(
        (r.cycle, r.code) for r in resU.reports
    )
    report(
        "Packed vs unpacked (16 vectors, 4 queries)",
        ["Design", "STEs", "Reports", "Functionally identical"],
        [["unpacked", len(netU.stes()), len(resU.reports), ""],
         ["packed (p=4)", len(netP.stes()), len(res.reports), identical]],
    )
    assert identical
    assert len(netP.stes()) < len(netU.stes())


def test_packing_routability(benchmark, report):
    """The Gen 1 outcome: packing compiles but does not fully route."""
    rng = np.random.default_rng(18)
    data = rng.integers(0, 2, (16, 64), dtype=np.uint8)

    def compile_both():
        compiler = APCompiler()
        netU, _ = build_knn_network(data)
        netP, _ = build_packed_network(data, group_size=8)
        return compiler.compile(netU), compiler.compile(netP)

    repU, repP = benchmark.pedantic(compile_both, rounds=1, iterations=1)
    report(
        "Packing routability under the Gen 1 routing model",
        ["Design", "Max fan-out", "Fully routable", "Notes"],
        [["unpacked", max(p.max_fan_out for p in repU.placements),
          repU.fully_routable, ""],
         ["packed (p=8)", max(p.max_fan_out for p in repP.placements),
          repP.fully_routable, "; ".join(repP.notes)[:60]]],
    )
    assert repU.fully_routable
    assert not repP.fully_routable
