"""Availability under injected faults: replica failover and hedged reads.

PR 9 wraps every shard slot of the remote fan-out in a
:class:`~repro.host.replication.ReplicaGroup`: health-tracked primary
selection, automatic failover, and hedged reads.  This benchmark
measures the two headline claims with real processes and the
deterministic fault harness (:mod:`repro.host.faults`):

* **kill failover** — a 2-replica group serves a stream of query
  batches while one replica (a real server *process*) is SIGKILLed
  mid-stream.  Every batch must come back complete (never flagged
  partial) and bit-identical to the local reference engine: replica
  death is absorbed inside the group, not surfaced as degradation.
* **hedged tail latency** — a chaos proxy delays every 4th reply by a
  fixed amount (intermittent slowness, the pattern EWMA routing alone
  cannot dodge).  Baseline: a single-replica group behind the proxy —
  its p99 eats the injected delay.  Treatment: a 2-replica group with
  hedging — a speculative duplicate on the healthy replica wins the
  slow requests.  ``p99_cut`` is baseline p99 over hedged p99; the
  gate requires >= 2x.

Results land in ``BENCH_availability.json``; CI runs ``--quick`` and
gates the booleans plus ``p99_cut`` through
``benchmarks/check_regression.py``.
"""

import json
import multiprocessing
import os
import signal
import time


def _workload(n, d, n_queries, seed=2017):
    import numpy as np

    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _serve_replica_proc(data, address_queue):
    """Child-process entry: serve the full dataset as one shard."""
    from repro.host.rpc import ShardServer

    server = ShardServer(data, execution="functional")
    server.start()
    address_queue.put("{}:{}".format(*server.address))
    server._thread.join()


def _percentile(samples, q):
    ordered = sorted(samples)
    idx = min(len(ordered) - 1, max(0, int(q * len(ordered) + 0.5) - 1))
    return ordered[idx]


def run_kill_failover(n, d, q, k, batches, kill_at):
    """SIGKILL one replica of a 2-replica group mid-stream; every batch
    must stay complete and bit-identical."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.replication import HedgePolicy
    from repro.host.rpc import RemoteShardPool

    data, queries = _workload(n, d, q)
    ref = APSimilaritySearch(data, k=k, execution="functional").search(queries)

    ctx = multiprocessing.get_context()
    address_queue = ctx.Queue()
    procs = [
        ctx.Process(
            target=_serve_replica_proc, args=(data, address_queue),
            daemon=True,
        )
        for _ in range(2)
    ]
    for p in procs:
        p.start()
    killed = False
    try:
        addresses = [address_queue.get(timeout=60) for _ in range(2)]
        spec = "|".join(addresses)
        with RemoteShardPool(
            [spec], connect_timeout_s=2.0, retries=0,
            hedge=HedgePolicy(fixed_delay_s=5.0),  # isolate pure failover
        ) as pool:
            partials, identical, failovers = [], [], 0
            for b in range(batches):
                if b == kill_at:
                    # kill whichever replica is the tracked primary
                    snap = pool.health_snapshot()[spec]
                    primary = max(snap, key=lambda r: r["successes"])
                    victim = procs[addresses.index(primary["address"])]
                    os.kill(victim.pid, signal.SIGKILL)
                    victim.join(timeout=30)
                    killed = True
                res = pool.search(queries, k=k)
                partials.append(bool(res.partial))
                identical.append(bool(
                    (res.indices == ref.indices).all()
                    and (res.distances == ref.distances).all()
                ))
                failovers += res.failovers
        return {
            "batches": batches,
            "kill_at_batch": kill_at,
            "never_partial": not any(partials),
            "all_identical": all(identical),
            "failover_absorbed": killed and failovers >= 1,
            "failovers": failovers,
        }
    finally:
        for p in procs:
            if p.is_alive():
                p.terminate()
        for p in procs:
            p.join(timeout=30)


def run_hedged_tail(n, d, q, k, requests, delay_s, every):
    """p99 of an intermittently-slow replica, unhedged vs hedged."""
    from repro.host.faults import ChaosProxy, FaultSpec
    from repro.host.replication import HedgePolicy, ReplicaGroup
    from repro.host.rpc import ShardServer

    data, queries = _workload(n, d, q, seed=11)
    slow = ShardServer(data, execution="functional").start()
    healthy = ShardServer(data, execution="functional").start()
    slow_addr = "{}:{}".format(*slow.address)
    healthy_addr = "{}:{}".format(*healthy.address)
    fault = FaultSpec("delay", delay_s=delay_s, every=every)

    def stream(group, proxy):
        proxy.set_fault(fault)
        latencies = []
        with group:
            group.search(queries, k=k)  # connect/compile warmup
            for _ in range(requests):
                t0 = time.perf_counter()
                res = group.search(queries, k=k)
                latencies.append(time.perf_counter() - t0)
                assert res[0].shape == (q, k)
        return latencies, group.hedges

    try:
        # Baseline: a group of ONE — nowhere to hedge, p99 eats the delay
        with ChaosProxy(slow_addr) as proxy:
            unhedged, _ = stream(
                ReplicaGroup(proxy.address, retries=0), proxy
            )
        # Treatment: the same slow replica plus a healthy one, hedged
        with ChaosProxy(slow_addr) as proxy:
            hedged, hedges = stream(
                ReplicaGroup(
                    f"{proxy.address}|{healthy_addr}", retries=0,
                    hedge=HedgePolicy(fixed_delay_s=max(0.002, delay_s / 10)),
                ),
                proxy,
            )
    finally:
        slow.close()
        healthy.close()

    p99_unhedged = _percentile(unhedged, 0.99)
    p99_hedged = _percentile(hedged, 0.99)
    return {
        "requests": requests,
        "injected_delay_s": delay_s,
        "every": every,
        "p99_unhedged_s": p99_unhedged,
        "p99_hedged_s": p99_hedged,
        "p50_unhedged_s": _percentile(unhedged, 0.50),
        "p50_hedged_s": _percentile(hedged, 0.50),
        "p99_cut": p99_unhedged / max(p99_hedged, 1e-12),
        "hedges_fired": int(hedges),
    }


def run_all(quick=False):
    if quick:
        kill = run_kill_failover(
            n=1 << 10, d=32, q=8, k=5, batches=10, kill_at=4
        )
        tail = run_hedged_tail(
            n=1 << 10, d=32, q=8, k=5, requests=24, delay_s=0.2, every=4
        )
    else:
        kill = run_kill_failover(
            n=1 << 13, d=64, q=32, k=10, batches=40, kill_at=15
        )
        tail = run_hedged_tail(
            n=1 << 12, d=64, q=16, k=10, requests=120, delay_s=0.25, every=4
        )
    return {"kill_failover": kill, "hedged_tail": tail, "quick": quick}


# -- pytest harness -------------------------------------------------------


def test_availability_smoke(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    kill, tail = results["kill_failover"], results["hedged_tail"]
    report(
        "Availability under faults (quick sizes)",
        ["Scenario", "Result"],
        [
            ["kill failover", f"{kill['batches']} batches, "
             f"never_partial={kill['never_partial']}, "
             f"identical={kill['all_identical']}, "
             f"failovers={kill['failovers']}"],
            ["hedged tail", f"p99 {tail['p99_unhedged_s'] * 1e3:.1f}ms -> "
             f"{tail['p99_hedged_s'] * 1e3:.1f}ms "
             f"({tail['p99_cut']:.1f}x cut, {tail['hedges_fired']} hedges)"],
        ],
    )
    assert kill["never_partial"], "replica death surfaced as partial"
    assert kill["all_identical"], "failover diverged from local engine"
    assert kill["failover_absorbed"]
    assert tail["hedges_fired"] >= 1
    assert tail["p99_cut"] >= 2.0, (
        f"hedging cut p99 only {tail['p99_cut']:.2f}x (need >= 2x)"
    )


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_availability.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    kill, tail = results["kill_failover"], results["hedged_tail"]

    print("== kill failover: SIGKILL one replica of a 2-replica group ==")
    print(f"  {kill['batches']} batches, kill at batch "
          f"{kill['kill_at_batch']}: never_partial={kill['never_partial']} "
          f"all_identical={kill['all_identical']} "
          f"failovers={kill['failovers']}")
    print("== hedged tail: every "
          f"{tail['every']}th reply +{tail['injected_delay_s'] * 1e3:.0f}ms ==")
    print(f"  p50 {tail['p50_unhedged_s'] * 1e3:8.2f}ms -> "
          f"{tail['p50_hedged_s'] * 1e3:8.2f}ms")
    print(f"  p99 {tail['p99_unhedged_s'] * 1e3:8.2f}ms -> "
          f"{tail['p99_hedged_s'] * 1e3:8.2f}ms "
          f"({tail['p99_cut']:.1f}x cut, {tail['hedges_fired']} hedge(s))")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    if not (kill["never_partial"] and kill["all_identical"]):
        raise SystemExit("FAIL: replica death leaked into results")
    if not kill["failover_absorbed"]:
        raise SystemExit("FAIL: no failover recorded around the kill")
    if tail["p99_cut"] < 2.0:
        raise SystemExit(
            f"FAIL: hedging cut p99 only {tail['p99_cut']:.2f}x (need >= 2x)"
        )
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
