"""Ablation — automatic prefix merging vs hand-crafted vector packing.

The paper hand-designs vector packing (Fig. 5).  The generic
prefix-merging optimizer (``repro.automata.optimize``) discovers the
same sharing automatically — guard, ladder, and sort skeleton collapse
across macros — and goes further because it packs across the whole
board rather than groups of 4.  The routing model then tells the same
cautionary tale as Section VI-A: the merged ladder's fan-out makes the
design unroutable on Gen 1.
"""

import numpy as np
import pytest

from repro.ap.compiler import APCompiler
from repro.automata.optimize import optimize
from repro.automata.simulator import CompiledSimulator
from repro.core.macros import build_knn_network
from repro.core.packing import packing_savings
from repro.core.stream import StreamLayout, encode_query_batch


@pytest.mark.parametrize("d", [16, 32, 64])
def test_optimizer_vs_packing(benchmark, report, d):
    rng = np.random.default_rng(81)
    data = rng.integers(0, 2, (16, d), dtype=np.uint8)
    net, hs = build_knn_network(data)

    opt, stats = benchmark.pedantic(optimize, args=(net,), rounds=1, iterations=1)

    hand = packing_savings(d, 4)
    comp = APCompiler().compile(opt)
    report(
        f"Prefix merging vs hand packing (n=16, d={d})",
        ["Approach", "STE savings", "Fully routable (Gen 1 model)"],
        [["hand packing, groups of 4 (paper)", f"{hand:.2f}x", "no (Sec. VI-A)"],
         ["automatic prefix merge, whole board", f"{stats.ste_savings:.2f}x",
          str(comp.fully_routable)]],
    )
    assert stats.ste_savings > hand * 0.8
    assert not comp.fully_routable  # same routing-pressure conclusion

    # behaviour preservation at benchmark scale
    queries = rng.integers(0, 2, (2, d), dtype=np.uint8)
    lay = StreamLayout(d, hs[0].collector_depth)
    s = encode_query_batch(queries, lay)
    r1 = sorted((r.cycle, r.code) for r in CompiledSimulator(net).run(s).reports)
    r2 = sorted((r.cycle, r.code) for r in CompiledSimulator(opt).run(s).reports)
    assert r1 == r2
