"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures and
prints a paper-vs-reproduction comparison through :func:`report_table`
(forced past pytest's capture so `pytest benchmarks/ --benchmark-only`
shows the rows).
"""

import sys

import pytest


@pytest.fixture
def report(capsys):
    """Print a labelled comparison table, bypassing output capture."""

    def _report(title: str, headers: list[str], rows: list[list]) -> None:
        with capsys.disabled():
            widths = [
                max(len(str(h)), *(len(str(r[i])) for r in rows))
                for i, h in enumerate(headers)
            ]
            line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
            print(f"\n=== {title} ===", file=sys.stderr)
            print(line, file=sys.stderr)
            print("-" * len(line), file=sys.stderr)
            for r in rows:
                print(
                    "  ".join(str(c).ljust(w) for c, w in zip(r, widths)),
                    file=sys.stderr,
                )

    return _report


def fmt(x, digits=3):
    """Compact numeric formatting for table cells."""
    if isinstance(x, float):
        if x == 0:
            return "0"
        if abs(x) >= 1000 or abs(x) < 0.001:
            return f"{x:.{digits}g}"
        return f"{x:.{digits}g}"
    return str(x)
