"""E13 + Section VII-A/B: architectural-extension functional benchmarks.

Times (a) the counter-increment macro evaluating 7 dimensions per
symbol — the 1.75x latency model — and (b) the dynamic-threshold
comparison macro of Fig. 8.
"""

import numpy as np
from repro.automata.network import AutomataNetwork
from repro.automata.simulator import CompiledSimulator
from repro.ap.extensions import (
    build_comparison_macro,
    build_counter_increment_macro,
    counter_increment_speedup,
    dimension_packed_stream,
)


def test_counter_increment_latency(benchmark, report):
    d = 56
    rng = np.random.default_rng(51)
    v = rng.integers(0, 2, d, dtype=np.uint8)
    q = rng.integers(0, 2, d, dtype=np.uint8)
    net = AutomataNetwork("ci")
    h = build_counter_increment_macro(net, v, 0, "x_", 7)
    sim = CompiledSimulator(net)
    stream = dimension_packed_stream(q, 7)

    res = benchmark(sim.run, stream)

    base_hamming = d  # base design streams one dim per symbol
    ext_hamming = h["hamming_cycles"]
    report(
        "Section VII-A: counter-increment extension (d=56, 7 dims/symbol)",
        ["Quantity", "Base design", "With extension"],
        [["Hamming-phase symbols", base_hamming, ext_hamming],
         ["query latency model (cycles)", 2 * d, d + ext_hamming],
         ["latency gain", "1x", f"{counter_increment_speedup(7):.2f}x"]],
    )
    assert ext_hamming == 8
    assert len(res.reports) == 1
    m_true = int((v == q).sum())
    assert res.reports[0].cycle == h["n_groups"] + 1 + (d - m_true) + 1


def test_comparison_macro(benchmark, report):
    net = AutomataNetwork("cmp")
    build_comparison_macro(net, "c_", 1, ord("a"), ord("b"), ord("?"))
    sim = CompiledSimulator(net)

    def sweep():
        results = {}
        for a in range(6):
            for b in range(6):
                stream = b"a" * a + b"b" * b + b"?" + b"xx"
                results[(a, b)] = bool(sim.run(stream).reports)
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    errors = [(a, b) for (a, b), fired in results.items() if fired != (a > b)]
    report(
        "Section VII-B / Fig. 8: dynamic-threshold 'A > B' macro",
        ["Pairs swept", "Verdict", "Errors"],
        [[len(results), "fires iff A > B", len(errors)]],
    )
    assert errors == []
