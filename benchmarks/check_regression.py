"""Bench-regression gate: compare fresh ``BENCH_*.json`` runs to baselines.

CI has always *run* the benchmark smokes but never compared them to
anything, so a perf regression — the repo's whole value proposition —
could ship silently.  This gate closes that hole:

* ``benchmarks/baselines/BENCH_*.json`` holds committed ``--quick``
  runs (the baseline trajectory);
* after CI re-runs every benchmark with ``--quick``, this script
  extracts a small set of **tracked metrics** from each fresh file and
  checks them against the baseline within per-metric tolerance bands;
* any violation fails the job (exit 1) with a table naming the metric,
  the baseline, the fresh value, and the allowed band.

Tracked metrics are chosen to be meaningful across machines:

* **bool** invariants (bit-identity flags, auto-fallback behavior)
  must simply hold;
* **deterministic ratios/byte counts** (shm payload cut, RPC wire
  bytes) get the tight default band — a fresh value more than 25%
  worse than baseline fails;
* **wall-clock-derived ratios** (kernel/search speedups, RPC
  overhead) are machine-relative but noisy at ``--quick`` sizes, so
  they get explicitly wider bands — they catch collapses (a speedup
  halving), not jitter.

Re-baselining (after an intentional perf change)::

    python benchmarks/bench_parallel_shards.py   --quick
    python benchmarks/bench_functional_hotpath.py --quick
    python benchmarks/bench_multiboard_scaling.py --quick
    python benchmarks/bench_shm_transport.py     --quick
    python benchmarks/bench_rpc_fanout.py        --quick
    python benchmarks/bench_workloads.py         --quick
    python benchmarks/bench_dispatch_overhead.py --quick
    python benchmarks/bench_dataset_stores.py    --quick
    python benchmarks/bench_availability.py      --quick
    python benchmarks/bench_observability.py     --quick
    python benchmarks/check_regression.py --update

then commit the refreshed ``benchmarks/baselines/`` alongside the
change that justified it.  ``--update`` refuses to run if a fresh file
is missing, so a partial re-baseline cannot silently drop coverage.
"""

import argparse
import json
import shutil
import sys
from dataclasses import dataclass
from pathlib import Path

# Tolerance defaults: deterministic metrics fail beyond a 25% slide;
# wall-clock-derived ratios get wider bands set per metric below.
DEFAULT_TOLERANCE = 0.25
TIMING_TOLERANCE = 0.60


@dataclass(frozen=True)
class Metric:
    """One tracked value extracted from a BENCH json payload.

    ``kind``:
      * ``"bool"`` — fresh must be truthy;
      * ``"higher_better"`` — fail when fresh < baseline * (1 - tol);
      * ``"lower_better"`` — fail when fresh > baseline * (1 + tol).
    """

    name: str
    extract: callable
    kind: str = "higher_better"
    tolerance: float = DEFAULT_TOLERANCE


def _shm_payload_ratio(doc):
    """pickle/shm payload bytes from matched multiboard sweep rows."""
    by_key = {}
    for row in doc["sweep"]:
        if row["ipc_payload_bytes"]:
            by_key.setdefault(
                (row["devices"], row["transport"]), row["ipc_payload_bytes"]
            )
    ratios = [
        by_key[(dev, "pickle")] / by_key[(dev, "shm")]
        for dev, transport in by_key
        if transport == "pickle" and (dev, "shm") in by_key
    ]
    return min(ratios) if ratios else None


TRACKED: dict[str, list[Metric]] = {
    "BENCH_functional.json": [
        Metric("bit_identical", lambda d: all(
            r["identical"] for r in d["kernel"] + d["search"]
        ) and all(b["identical"] for b in d["parity"]["backends"].values()),
            kind="bool"),
        Metric("kernel_speedup_min",
               lambda d: min(r["speedup"] for r in d["kernel"]),
               tolerance=TIMING_TOLERANCE),
        Metric("search_speedup_min",
               lambda d: min(r["speedup"] for r in d["search"]),
               tolerance=TIMING_TOLERANCE),
    ],
    "BENCH_multiboard.json": [
        Metric("bit_identical",
               lambda d: all(r["identical"] for r in d["sweep"])
               and d["warm_start"]["identical"], kind="bool"),
        Metric("auto_stays_pickle",
               lambda d: d["auto_small_n"]["auto_stays_pickle"], kind="bool"),
        Metric("warm_start_zero_recompiles",
               lambda d: d["warm_start"]["restart_recompiles"] == 0,
               kind="bool"),
        Metric("shm_payload_ratio", _shm_payload_ratio),
    ],
    "BENCH_shm.json": [
        Metric("payload_cut",
               lambda d: d["transport_microbench"].get("payload_cut")),
        Metric("end_to_end_identical",
               lambda d: all(r["identical"] for r in d["end_to_end"]),
               kind="bool"),
        Metric("auto_stays_pickle",
               lambda d: d["auto_small_n"]["auto_stays_pickle"], kind="bool"),
    ],
    "BENCH_parallel.json": [
        Metric("bit_identical",
               lambda d: all(r["identical"] for r in d["parity"]["rows"])
               and d["cache"]["identical"], kind="bool"),
        Metric("warm_cache_hit_all",
               lambda d: d["cache"]["warm_hits"] == d["cache"]["n_partitions"],
               kind="bool"),
    ],
    "BENCH_rpc.json": [
        Metric("bit_identical",
               lambda d: all(r["identical"] for r in d["fanout_sweep"])
               and d["batched_front_door"]["identical"], kind="bool"),
        Metric("no_partial_on_loopback",
               lambda d: not any(r["partial"] for r in d["fanout_sweep"]),
               kind="bool"),
        Metric("wire_bytes_out_max",
               lambda d: max(r["wire_bytes_out_per_batch"]
                             for r in d["fanout_sweep"]),
               kind="lower_better"),
        Metric("wire_bytes_back_max",
               lambda d: max(r["wire_bytes_back_per_batch"]
                             for r in d["fanout_sweep"]),
               kind="lower_better"),
        Metric("rpc_overhead_max",
               lambda d: max(r["rpc_overhead"] for r in d["fanout_sweep"]),
               kind="lower_better", tolerance=1.50),
    ],
    "BENCH_dispatch.json": [
        Metric("bit_identical",
               lambda d: all(r["identical"] for r in d["engine"])
               and all(r["identical"] for r in d["workload_parity"])
               and d["chunking"]["identical"], kind="bool"),
        Metric("chunked_dispatch",
               lambda d: d["chunking"]["chunked"]
               and d["chunking"]["dispatch_recorded"], kind="bool"),
        Metric("dispatch_ratio",
               lambda d: d["dispatch"].get("dispatch_ratio"),
               tolerance=TIMING_TOLERANCE),
        Metric("ring_submit_to_start_us",
               lambda d: d["dispatch"].get("ring_submit_to_start_us"),
               kind="lower_better", tolerance=1.50),
    ],
    "BENCH_dataset.json": [
        Metric("bit_identical",
               lambda d: all(r["identical"] for r in d["parity"])
               and d["ipc"]["array"]["identical"]
               and d["ipc"]["mmap"]["identical"], kind="bool"),
        Metric("pds_rejects_corruption",
               lambda d: d["format_rejection"]["all_rejected"], kind="bool"),
        Metric("ipc_payload_cut",
               lambda d: d["ipc"].get("payload_cut")),
        # None off Linux (ru_maxrss semantics differ) — _evaluate skips.
        Metric("mmap_rss_within_budget",
               lambda d: d["rss"]["within_budget"], kind="bool"),
    ],
    "BENCH_availability.json": [
        Metric("kill_failover_complete",
               lambda d: d["kill_failover"]["never_partial"]
               and d["kill_failover"]["all_identical"]
               and d["kill_failover"]["failover_absorbed"], kind="bool"),
        # The acceptance gate is absolute (>= 2x), not baseline-relative:
        # hedging that stops halving an injected 200ms tail is broken on
        # any machine, so encode the floor as a bool invariant and track
        # the raw ratio only with the wide wall-clock band.
        Metric("hedge_cuts_p99_2x",
               lambda d: d["hedged_tail"]["p99_cut"] >= 2.0, kind="bool"),
        Metric("hedges_fired",
               lambda d: d["hedged_tail"]["hedges_fired"] >= 1, kind="bool"),
        Metric("p99_cut", lambda d: d["hedged_tail"]["p99_cut"],
               tolerance=TIMING_TOLERANCE),
    ],
    "BENCH_observability.json": [
        # The overhead gate is absolute (<2% enabled-vs-disabled), not
        # baseline-relative: a registry that costs more than that on
        # any machine violates the attach-only contract, so it is a
        # bool invariant rather than a tolerance-banded ratio.
        Metric("overhead_under_2pct",
               lambda d: d["overhead"]["overhead_ok"], kind="bool"),
        Metric("bit_identical",
               lambda d: d["overhead"]["identical"], kind="bool"),
        Metric("counters_deterministic",
               lambda d: d["determinism"]["identical_counters"]
               and d["determinism"]["counters_flowed"], kind="bool"),
        Metric("trace_spans_captured",
               lambda d: d["trace"]["spans_captured"]
               and d["trace"]["histogram_fed"], kind="bool"),
    ],
    "BENCH_workloads.json": [
        Metric("bit_identical",
               lambda d: all(s["identical"] for s in d["sweep"])
               and all(r["identical"] for r in d["remote"]), kind="bool"),
        Metric("no_partial_on_loopback",
               lambda d: not any(r["partial"] for r in d["remote"]),
               kind="bool"),
        Metric("parallel_speedup_min",
               lambda d: min(s["speedup"] for s in d["sweep"]),
               tolerance=TIMING_TOLERANCE),
        Metric("wire_bytes_out_max",
               lambda d: max(r["wire_bytes_out_per_batch"]
                             for r in d["remote"]),
               kind="lower_better"),
        Metric("wire_bytes_back_max",
               lambda d: max(r["wire_bytes_back_per_batch"]
                             for r in d["remote"]),
               kind="lower_better"),
    ],
}


@dataclass
class Check:
    file: str
    metric: str
    baseline: object
    fresh: object
    band: str
    ok: bool


def _evaluate(metric: Metric, baseline_doc, fresh_doc) -> Check | None:
    base = metric.extract(baseline_doc)
    fresh = metric.extract(fresh_doc)
    if base is None or fresh is None:
        # The platform skipped this path (e.g. no shm) in either run:
        # nothing comparable to gate on.
        return None
    if metric.kind == "bool":
        return Check("", metric.name, bool(base), bool(fresh),
                     "must be true", bool(fresh))
    base = float(base)
    fresh = float(fresh)
    if metric.kind == "higher_better":
        floor = base * (1.0 - metric.tolerance)
        return Check("", metric.name, round(base, 4), round(fresh, 4),
                     f">= {floor:.4g}", fresh >= floor)
    if metric.kind == "lower_better":
        ceiling = base * (1.0 + metric.tolerance)
        return Check("", metric.name, round(base, 4), round(fresh, 4),
                     f"<= {ceiling:.4g}", fresh <= ceiling)
    raise ValueError(f"unknown metric kind {metric.kind!r}")


def run_checks(baseline_dir: Path, fresh_dir: Path) -> tuple[list[Check], list[str]]:
    checks: list[Check] = []
    problems: list[str] = []
    for filename, metrics in sorted(TRACKED.items()):
        baseline_path = baseline_dir / filename
        fresh_path = fresh_dir / filename
        if not baseline_path.exists():
            problems.append(f"missing baseline {baseline_path} — run the "
                            f"benchmark and check_regression.py --update")
            continue
        if not fresh_path.exists():
            problems.append(
                f"missing fresh {fresh_path} — did the benchmark step run?"
            )
            continue
        with open(baseline_path) as f:
            baseline_doc = json.load(f)
        with open(fresh_path) as f:
            fresh_doc = json.load(f)
        for metric in metrics:
            try:
                check = _evaluate(metric, baseline_doc, fresh_doc)
            except (KeyError, TypeError, ValueError) as exc:
                problems.append(
                    f"{filename}:{metric.name}: cannot evaluate ({exc!r}) — "
                    "schema drift? re-baseline with --update"
                )
                continue
            if check is not None:
                check.file = filename
                checks.append(check)
    return checks, problems


def update_baselines(baseline_dir: Path, fresh_dir: Path) -> int:
    missing = [f for f in sorted(TRACKED) if not (fresh_dir / f).exists()]
    if missing:
        print("refusing to re-baseline: missing fresh runs for "
              + ", ".join(missing), file=sys.stderr)
        return 1
    baseline_dir.mkdir(parents=True, exist_ok=True)
    for filename in sorted(TRACKED):
        shutil.copyfile(fresh_dir / filename, baseline_dir / filename)
        print(f"re-baselined {baseline_dir / filename}")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir",
                        default=Path(__file__).parent / "baselines",
                        type=Path, help="committed baseline directory")
    parser.add_argument("--fresh-dir", default=Path("."), type=Path,
                        help="where the fresh BENCH_*.json files landed")
    parser.add_argument("--update", action="store_true",
                        help="copy the fresh runs over the baselines "
                             "(intentional perf change: commit the result)")
    args = parser.parse_args(argv)

    if args.update:
        return update_baselines(args.baseline_dir, args.fresh_dir)

    checks, problems = run_checks(args.baseline_dir, args.fresh_dir)
    width = max((len(c.metric) for c in checks), default=10)
    current = None
    for c in checks:
        if c.file != current:
            current = c.file
            print(f"== {c.file} ==")
        status = "ok  " if c.ok else "FAIL"
        print(f"  [{status}] {c.metric:<{width}}  baseline={c.baseline!s:<10} "
              f"fresh={c.fresh!s:<10} band: {c.band}")
    for p in problems:
        print(f"  [FAIL] {p}")
    failed = [c for c in checks if not c.ok]
    if failed or problems:
        print(f"\nregression gate: {len(failed)} metric failure(s), "
              f"{len(problems)} structural problem(s)", file=sys.stderr)
        print("if this slide is intentional, re-baseline: "
              "`python benchmarks/check_regression.py --update` "
              "(see module docstring)", file=sys.stderr)
        return 1
    print(f"\nregression gate: {len(checks)} tracked metrics within bands")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
