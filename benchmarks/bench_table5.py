"""E6 — Table V: spatial-indexing speedups on kNN-TagSpace.

The paper compares "ARM + AP" against single-threaded CPU baselines for
linear search and three indexes, using an analytical model fed by
benchmarked index traversals: queries are batched per bucket, each
distinct bucket costs one board reconfiguration, and each visit scans
one bucket (one board configuration's worth of vectors).

Row 1 (linear) is regenerated at full paper scale (2^20 points) from
the calibrated models.  The index rows run the *real* index
implementations on clustered TagSpace-shaped data at a reduced scale
(2^14 points — Lloyd's at 2^20 x 256 is not a benchmark, it's a
wait), then apply the identical run-time model; the paper-defining
*shape* — Gen 1 hovering at break-even (0.6-0.9x) because 45 ms reloads
eat the pruning gains, Gen 2 winning by 1-2 orders — must reproduce.
"""

import pytest

from repro.ap.device import GEN1, GEN2
from repro.index.kdtree import RandomizedKDTrees
from repro.index.kmeans import HierarchicalKMeans
from repro.index.lsh import HammingLSH
from repro.index.search import IndexedAPSearch, indexed_runtime_model
from repro.perf.models import CORTEX_MODEL, ap_gen1_model, ap_gen2_model
from repro.workloads.generators import clustered_binary, queries_near_dataset
from repro.workloads.params import LARGE_N, N_QUERIES, WORKLOADS

PAPER_TABLE5 = {
    "Linear (No Index)": (16.0, 91.0),
    "KD-Tree": (0.89, 106.0),
    "K-Means": (0.88, 120.0),
    "MPLSH": (0.62, 3.5),
}

N_SCALED = 2**14
N_QUERY_SCALED = 1024
_CACHE: dict = {}


def scaled_corpus():
    if "corpus" not in _CACHE:
        w = WORKLOADS["kNN-TagSpace"]
        data, _ = clustered_binary(N_SCALED, w.d, n_clusters=64,
                                   flip_prob=0.06, seed=21)
        queries = queries_near_dataset(data, N_QUERY_SCALED, flip_prob=0.04,
                                       seed=22)
        _CACHE["corpus"] = (data, queries)
    return _CACHE["corpus"]


def test_table5_linear_full_scale(benchmark, report):
    w = WORKLOADS["kNN-TagSpace"]

    def speedups():
        t_arm_1t = CORTEX_MODEL.single_thread_runtime_s(LARGE_N, N_QUERIES, w.d)
        g1 = ap_gen1_model().runtime_for(w, LARGE_N, N_QUERIES)
        g2 = ap_gen2_model().runtime_for(w, LARGE_N, N_QUERIES)
        return t_arm_1t / g1, t_arm_1t / g2

    s1, s2 = benchmark(speedups)
    report(
        "Table V row 1: Linear (no index), ARM single-thread baseline",
        ["Config", "Model", "Paper"],
        [["ARM + AP Gen 1", f"{s1:.1f}x", "16x"],
         ["ARM + AP Gen 2", f"{s2:.1f}x", "91x"]],
    )
    assert s1 == pytest.approx(16.0, rel=0.15)
    assert s2 == pytest.approx(91.0, rel=0.05)


def _index_speedups(make_index):
    data, queries = scaled_corpus()
    w = WORKLOADS["kNN-TagSpace"]
    index = make_index(data, w.board_capacity)
    _, _, stats = IndexedAPSearch(index).search(queries, w.k)
    out = {}
    for name, device in (("gen1", GEN1), ("gen2", GEN2)):
        model = indexed_runtime_model(stats, w.d, device, CORTEX_MODEL,
                                      single_thread_host=True)
        out[name] = model
    return out, stats


INDEXES = {
    "KD-Tree": lambda data, cap: RandomizedKDTrees(
        data, n_trees=4, bucket_size=cap, seed=23
    ),
    "K-Means": lambda data, cap: HierarchicalKMeans(
        data, branching=8, bucket_size=cap, seed=23
    ),
    "MPLSH": lambda data, cap: HammingLSH(
        data, n_tables=4, hash_bits=6, n_probes=8, seed=23
    ),
}


@pytest.mark.parametrize("iname", sorted(INDEXES))
def test_table5_indexed(benchmark, report, iname):
    models, stats = benchmark.pedantic(
        _index_speedups, args=(INDEXES[iname],), rounds=1, iterations=1
    )
    p1, p2 = PAPER_TABLE5[iname]
    s1, s2 = models["gen1"]["speedup"], models["gen2"]["speedup"]
    report(
        f"Table V: {iname} on kNN-TagSpace (scaled n=2^14, q=1024)",
        ["Config", "Model speedup", "Paper (n=2^20)", "Buckets loaded",
         "Visits"],
        [["ARM + AP Gen 1", f"{s1:.2f}x", f"{p1}x",
          stats.distinct_buckets_loaded, stats.bucket_visits],
         ["ARM + AP Gen 2", f"{s2:.2f}x", f"{p2}x", "", ""]],
    )
    # Shape assertions (scale differs from the paper's 2^20):
    assert s1 < 2.5, "Gen 1 must hover near break-even (reconfig-bound)"
    assert s2 > 4 * s1, "Gen 2 must win by the reconfiguration ratio"
    assert s2 > 1.5
    if iname == "MPLSH":
        # Multi-probe visits many buckets per query: the worst AP case.
        assert stats.bucket_visits > stats.n_queries
