"""Ablation — Section I's data-movement argument, quantified.

"Distance calculations are relatively cheap ... but moving feature
vector data from memory to the compute device is a huge bottleneck.
Moreover, this data is used only once per kNN query and discarded, and
the result of a kNN query is only a handful of identifiers."

The benchmark prints bytes-over-the-interface per query batch for the
von Neumann platforms vs the AP under three reporting regimes, exposing
both sides: the near-data win once reporting is sparse, and the
all-report design's report-traffic explosion that motivates
Section VI-C.
"""

from benchmarks.conftest import fmt
from repro.perf.roofline import ap_profile, von_neumann_profile
from repro.workloads.params import LARGE_N, N_QUERIES, WORKLOADS


def profiles():
    w = WORKLOADS["kNN-SIFT"]
    batches = 100
    vn = von_neumann_profile(LARGE_N, w.d, batches * N_QUERIES, w.k,
                             passes=batches, label="CPU/GPU (per-batch stream)")
    ap_full = ap_profile(LARGE_N, w.d, batches * N_QUERIES, w.k,
                         configurations=1, label="AP, all-report kNN")
    ap_reduced = ap_profile(LARGE_N, w.d, batches * N_QUERIES, w.k,
                            reports_per_query=LARGE_N / 8, configurations=1,
                            label="AP + 8x activation reduction")
    ap_filter = ap_profile(LARGE_N, w.d, batches * N_QUERIES, w.k,
                           reports_per_query=2 * w.k, configurations=1,
                           label="AP, range/threshold filter")
    return [vn, ap_full, ap_reduced, ap_filter]


def test_data_movement(benchmark, report):
    rows_src = benchmark(profiles)
    rows = [
        [p.label, fmt(p.bytes_in / 1e9), fmt(p.bytes_out / 1e9),
         fmt(p.amplification, 4)]
        for p in rows_src
    ]
    report(
        "Data movement per 100 x 4096-query batches (kNN-SIFT, n=2^20)",
        ["Configuration", "In (GB)", "Out (GB)", "Bytes per useful byte"],
        rows,
    )
    vn, ap_full, ap_reduced, ap_filter = rows_src
    assert ap_filter.amplification < vn.amplification / 10
    assert ap_full.bytes_out > ap_full.bytes_in  # VI-C's problem, visible
    assert ap_reduced.bytes_out < ap_full.bytes_out
