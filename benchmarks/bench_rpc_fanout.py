"""RPC shard fan-out: latency and wire traffic vs shard count.

``repro.host.rpc`` turns the local multi-board merge into a
rack-scale one: N :class:`~repro.host.rpc.ShardServer` instances each
own a balanced dataset shard, a :class:`~repro.host.rpc.
RemoteShardPool` fans every query batch out to all of them
concurrently, and one offset-aware merge makes the answer bit-identical
to a single local engine over the concatenated dataset.  This
benchmark measures what the network layer costs:

* **fan-out sweep** — for each shard count S, spin S servers (loopback
  TCP, one per balanced shard), run warm query batches through a
  :class:`~repro.host.rpc.RemoteMultiBoardSearch`, and record warm
  latency, the per-batch wire traffic (requests out, replies back —
  deterministic for a fixed workload), and bit-identity against the
  local reference engine.  ``rpc_overhead`` is warm remote latency
  over warm local latency: the price of crossing loopback TCP, which
  shrinks toward (and below) 1.0 as shards add real parallelism on
  multi-core hosts and the per-shard work drops.
* **batched front door** — the PR 4 admission layer composed in front
  of the rack (``RemoteMultiBoardSearch.batched()``): many concurrent
  single-query callers coalescing into merged fan-outs, verified
  bit-identical to the direct batch.

Results land in ``BENCH_rpc.json``; CI runs ``--quick`` and gates the
deterministic metrics (bit-identity, wire bytes) through
``benchmarks/check_regression.py``.
"""

import json
import os
import time
from concurrent.futures import ThreadPoolExecutor


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _workload(n, d, n_queries, seed=2017):
    import numpy as np

    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_fanout_sweep(n, d, q, k, cap, shard_counts, warm_rounds=3):
    """Latency/wire-bytes rows for S in ``shard_counts`` (S servers)."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.rpc import RemoteMultiBoardSearch, serve_shard

    data, queries = _workload(n, d, q)
    local = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional", cache=True
    )
    local.search(queries)  # warm the local compile cache
    t_local = min(_time(lambda: local.search(queries))
                  for _ in range(warm_rounds))
    ref = local.search(queries)

    rows = []
    for n_shards in shard_counts:
        servers = [
            serve_shard(
                data, i, n_shards, board_capacity=cap,
                execution="functional", cache=True,
            ).start()
            for i in range(n_shards)
        ]
        addresses = [f"{h}:{p}" for h, p in (s.address for s in servers)]
        try:
            with RemoteMultiBoardSearch(addresses, k=k) as remote:
                t_cold = _time(lambda: remote.search(queries))
                times, last = [], None
                sent0, recv0 = remote.pool.wire_bytes
                for _ in range(warm_rounds):
                    t0 = time.perf_counter()
                    last = remote.search(queries)
                    times.append(time.perf_counter() - t0)
                sent1, recv1 = remote.pool.wire_bytes
                t_warm = min(times)
                rows.append({
                    "n": n, "d": d, "q": q, "k": k, "cap": cap,
                    "shards": n_shards,
                    "t_local_warm_s": t_local,
                    "t_cold_s": t_cold,
                    "t_warm_s": t_warm,
                    "rpc_overhead": t_warm / max(t_local, 1e-12),
                    "wire_bytes_out_per_batch": (sent1 - sent0) // warm_rounds,
                    "wire_bytes_back_per_batch": (recv1 - recv0) // warm_rounds,
                    "partial": last.partial,
                    "identical": bool(
                        (last.indices == ref.indices).all()
                        and (last.distances == ref.distances).all()
                    ),
                })
        finally:
            for s in servers:
                s.close()
    return rows


def run_batched_front_door(n, d, q, k, cap, n_shards=2):
    """BatchRouter admission in front of the rack: concurrent callers
    coalesce into merged fan-outs, bit-identical to the direct batch."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.rpc import RemoteMultiBoardSearch, serve_shard

    data, queries = _workload(n, d, q, seed=11)
    ref = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional"
    ).search(queries)
    servers = [
        serve_shard(data, i, n_shards, board_capacity=cap,
                    execution="functional").start()
        for i in range(n_shards)
    ]
    addresses = [f"{h}:{p}" for h, p in (s.address for s in servers)]
    try:
        with RemoteMultiBoardSearch(addresses, k=k) as remote:
            with remote.batched(max_batch=q, max_wait_ms=5.0) as router:
                with ThreadPoolExecutor(max_workers=min(16, q)) as pool:
                    outs = list(pool.map(
                        lambda qi: router.search(queries[qi]), range(q)
                    ))
            stats = router.stats
            identical = all(
                (o.indices[0] == ref.indices[qi]).all()
                and (o.distances[0] == ref.distances[qi]).all()
                for qi, o in enumerate(outs)
            )
            return {
                "callers": stats.calls,
                "fanouts": stats.batches,
                "coalescing_ratio": stats.coalescing_ratio,
                "identical": bool(identical),
            }
    finally:
        for s in servers:
            s.close()


def run_all(quick=False):
    if quick:
        sweep = run_fanout_sweep(
            n=1 << 11, d=64, q=16, k=10, cap=256,
            shard_counts=(1, 2), warm_rounds=2,
        )
        batched = run_batched_front_door(n=1 << 10, d=64, q=12, k=5, cap=256)
    else:
        sweep = run_fanout_sweep(
            n=1 << 15, d=128, q=128, k=10, cap=1 << 12,
            shard_counts=(1, 2, 4, 8),
        )
        batched = run_batched_front_door(
            n=1 << 13, d=128, q=64, k=10, cap=1 << 11, n_shards=4
        )
    return {
        "fanout_sweep": sweep,
        "batched_front_door": batched,
        "quick": quick,
        "cores": _available_cores(),
    }


# -- pytest harness -------------------------------------------------------


def test_rpc_fanout_smoke(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    report(
        "RPC shard fan-out (quick sizes, loopback TCP)",
        ["Shards", "t_warm (s)", "Overhead vs local", "Wire out/back (B)",
         "Bit-identical"],
        [
            [r["shards"], f"{r['t_warm_s']:.4f}", f"{r['rpc_overhead']:.2f}x",
             f"{r['wire_bytes_out_per_batch']}/"
             f"{r['wire_bytes_back_per_batch']}", r["identical"]]
            for r in results["fanout_sweep"]
        ],
    )
    assert all(r["identical"] for r in results["fanout_sweep"])
    assert not any(r["partial"] for r in results["fanout_sweep"])
    assert results["batched_front_door"]["identical"]


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_rpc.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)

    print("== RPC shard fan-out: latency vs shard count (loopback TCP) ==")
    print(f"{'shards':>7} {'t_local_s':>10} {'t_warm_s':>9} {'overhead':>9} "
          f"{'wire_out_B':>11} {'wire_back_B':>12} {'identical':>10}")
    for r in results["fanout_sweep"]:
        print(f"{r['shards']:>7} {r['t_local_warm_s']:>10.4f} "
              f"{r['t_warm_s']:>9.4f} {r['rpc_overhead']:>8.2f}x "
              f"{r['wire_bytes_out_per_batch']:>11} "
              f"{r['wire_bytes_back_per_batch']:>12} {r['identical']!s:>10}")
    b = results["batched_front_door"]
    print(f"# batched front door: {b['callers']} callers -> {b['fanouts']} "
          f"fan-out(s), coalescing {b['coalescing_ratio']:.1f}x, "
          f"identical={b['identical']}")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    if not all(r["identical"] for r in results["fanout_sweep"]):
        raise SystemExit("FAIL: remote fan-out diverges from the local engine")
    if any(r["partial"] for r in results["fanout_sweep"]):
        raise SystemExit("FAIL: loopback shards reported partial results")
    if not b["identical"]:
        raise SystemExit("FAIL: batched front door diverges from direct batch")
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
