"""Shared-memory task transport: payload bytes and transport cost A/B.

``bench_multiboard_scaling.py`` measures the process backend end to
end, where pool dispatch latency and kernel compute share the bill;
this benchmark isolates the piece PR 4 changes — **how task payloads
cross the process boundary** — and demonstrates the win where it is
measurable by construction:

* **transport microbenchmark** — for a warm engine's real partition
  tasks (query batch + compiled functional-board artifact attached),
  time one full parent→worker round per task:

  - *pickle path*: ``pickle.dumps`` the ``(task, queries)`` submission
    and ``pickle.loads`` it back (what the executor pipe does, minus
    the pipe itself — a lower bound on the real cost);
  - *shm path*: export the task's payload into shared segments
    (:class:`~repro.host.shm.ShmExporter`), dumps/loads the descriptor
    task, and resolve the worker-side views
    (:func:`~repro.host.shm.resolve_array` /
    :func:`~repro.ap.compiler.import_artifact_shm`).

  The first shm round pays the one-time export copy; the steady-state
  rounds (per-search cost through a persistent pool) ship descriptors
  only.  Acceptance (full sizes, shm available): the descriptor
  payload must be **>= 3x smaller** than the pickled payload at n=2^16
  (it is typically 70-140x smaller), and the steady-state transport
  must never be slower beyond measurement noise.  The transport
  *time* ratio is measured and recorded: where pickling runs at
  memcpy speed the per-search wall-clock difference is small and the
  shm win is the payload itself — one physical copy of the dataset
  and artifacts shared by every worker instead of per-task duplicates
  flowing through the executor pipe (the paper's data-movement story);
  on hosts where serialization, pipe chunking, or memory bandwidth
  bound the process backend, the same payload cut converts directly
  into the 3x+ wall-clock gap.

* **end-to-end check** — warm ``APSimilaritySearch`` searches under
  process+pickle vs process+shm (persistent pools), verified
  bit-identical against the sequential engine, with the auto-transport
  small-n fallback asserted ("never slower at small n").

Results land in ``BENCH_shm.json`` next to the other benchmark
artifacts.  Runs under pytest (`--quick` sizes, skipped gracefully
when the platform lacks ``multiprocessing.shared_memory``) or
standalone: ``python benchmarks/bench_shm_transport.py [--quick]``.
"""

import json
import os
import pickle
import time

import numpy as np


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _warm_tasks(n, d, q, k, cap):
    """A warm engine's real partition tasks with artifacts attached —
    exactly what a warm process-backend search submits per pass."""
    from repro.ap.compiler import BoardImageCache
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import _attach_cached_artifact

    data, queries = _workload(n, d, q)
    cache = BoardImageCache(max_entries=256)
    eng = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional", cache=cache
    )
    eng.search(queries)  # warm the cache in-process
    tasks = [
        _attach_cached_artifact(t, cache)
        for t in eng._partition_tasks("functional")
    ]
    return eng, tasks, queries


def run_transport_microbench(n, d, q, k, cap, rounds=3):
    """Time parent→worker payload transport for one warm partition pass."""
    from repro.host.parallel import _export_task
    from repro.host.shm import ShmExporter, resolve_array, shm_available

    _, tasks, queries = _warm_tasks(n, d, q, k, cap)

    def pickle_round():
        total = 0
        for t in tasks:
            blob = pickle.dumps((t, queries), protocol=pickle.HIGHEST_PROTOCOL)
            total += len(blob)
            restored_task, restored_queries = pickle.loads(blob)
            assert restored_queries.shape == queries.shape
        return total

    t_pickle = min(_time(pickle_round) for _ in range(rounds))
    pickle_bytes = pickle_round()

    out = {
        "n": n, "d": d, "q": q, "k": k, "cap": cap, "tasks": len(tasks),
        "pickle_bytes": pickle_bytes,
        "t_pickle_s": t_pickle,
        "shm_supported": shm_available(),
    }
    if not shm_available():
        return out

    with ShmExporter() as exporter:

        def shm_round():
            total = 0
            queries_ref = exporter.export_array(queries)
            for t in tasks:
                stub = _export_task(t, exporter)
                blob = pickle.dumps(
                    (stub, queries_ref), protocol=pickle.HIGHEST_PROTOCOL
                )
                total += len(blob)
                restored_task, restored_ref = pickle.loads(blob)
                # worker side: zero-copy views
                view = resolve_array(restored_ref)
                assert view.shape == queries.shape
                if restored_task.dataset_ref is not None:
                    resolve_array(restored_task.dataset_ref)
                if restored_task.artifact_shm is not None:
                    from repro.ap.compiler import import_artifact_shm

                    import_artifact_shm(restored_task.artifact_shm)
            return total

        t_first = _time(shm_round)  # pays the one-time export copies
        t_steady = min(_time(shm_round) for _ in range(rounds))
        shm_bytes = shm_round()

    out.update({
        "shm_bytes": shm_bytes,
        "t_shm_first_s": t_first,
        "t_shm_steady_s": t_steady,
        "payload_cut": pickle_bytes / max(shm_bytes, 1),
        "transport_speedup": t_pickle / max(t_steady, 1e-12),
    })
    return out


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def run_end_to_end(n, d, q, k, cap, n_workers, warm_rounds=3):
    """Warm process searches, pickle vs shm transport, vs sequential."""
    from repro.ap.compiler import BoardImageCache
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import ParallelConfig

    data, queries = _workload(n, d, q, seed=11)
    ref = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional"
    ).search(queries)

    rows = []
    for transport in ("pickle", "shm"):
        cfg = ParallelConfig(
            n_workers=n_workers, backend="process", transport=transport,
            persistent=True,
        )
        with cfg:
            eng = APSimilaritySearch(
                data, k=k, board_capacity=cap, execution="functional",
                parallel=cfg, cache=BoardImageCache(max_entries=256),
            )
            t_cold = _time(lambda: eng.search(queries))
            times, last = [], None
            for _ in range(warm_rounds):
                t0 = time.perf_counter()
                last = eng.search(queries)
                times.append(time.perf_counter() - t0)
        rows.append({
            "transport_requested": transport,
            "transport_used": last.transport,
            "t_cold_s": t_cold,
            "t_warm_s": min(times),
            "identical": bool(
                (last.indices == ref.indices).all()
                and (last.distances == ref.distances).all()
            ),
        })
    return rows


def run_auto_fallback_check(n=1 << 10, d=64, q=8, k=5, cap=256):
    """transport="auto" stays on pickle below the payload threshold."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import ParallelConfig

    data, queries = _workload(n, d, q, seed=7)
    res = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional",
        parallel=ParallelConfig(n_workers=2, backend="process",
                                transport="auto"),
    ).search(queries)
    return {"n": n, "transport": res.transport,
            "auto_stays_pickle": res.transport == "pickle"}


def run_all(quick=False):
    if quick:
        micro = run_transport_microbench(
            n=1 << 12, d=64, q=32, k=10, cap=256, rounds=2
        )
        end_to_end = run_end_to_end(
            n=1 << 12, d=64, q=32, k=10, cap=256, n_workers=2, warm_rounds=2
        )
    else:
        # n=2^16 is the transport acceptance point: the warm payload is
        # ~megabytes of artifact + query bytes per pass on the pickle
        # path, descriptors under shm.
        micro = run_transport_microbench(
            n=1 << 16, d=128, q=256, k=10, cap=1 << 12
        )
        end_to_end = run_end_to_end(
            n=1 << 16, d=128, q=256, k=10, cap=1 << 12, n_workers=4
        )
    return {
        "transport_microbench": micro,
        "end_to_end": end_to_end,
        "auto_small_n": run_auto_fallback_check(),
        "quick": quick,
        "cores": _available_cores(),
    }


# -- pytest harness -------------------------------------------------------


def test_shm_transport_smoke(benchmark, report):
    import pytest

    from repro.host.shm import shm_available

    if not shm_available():
        pytest.skip("multiprocessing.shared_memory unsupported here")
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    micro = results["transport_microbench"]
    report(
        "Shared-memory task transport (quick sizes)",
        ["Path", "Payload bytes", "t (s)"],
        [
            ["pickle", micro["pickle_bytes"], f"{micro['t_pickle_s']:.4f}"],
            ["shm steady", micro["shm_bytes"], f"{micro['t_shm_steady_s']:.4f}"],
        ],
    )
    assert micro["payload_cut"] >= 3.0
    assert all(r["identical"] for r in results["end_to_end"])
    assert any(
        r["transport_used"] == "shm" for r in results["end_to_end"]
    )
    assert results["auto_small_n"]["auto_stays_pickle"]


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_shm.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    micro = results["transport_microbench"]

    print("== transport microbench: one warm partition pass ==")
    print(f"tasks={micro['tasks']} n={micro['n']} q={micro['q']}")
    print(f"pickle : {micro['pickle_bytes']:>12} bytes  "
          f"{micro['t_pickle_s'] * 1e3:8.2f} ms")
    if micro["shm_supported"]:
        print(f"shm    : {micro['shm_bytes']:>12} bytes  "
              f"{micro['t_shm_steady_s'] * 1e3:8.2f} ms steady "
              f"({micro['t_shm_first_s'] * 1e3:.2f} ms first incl. export)")
        print(f"# payload cut {micro['payload_cut']:.0f}x, transport speedup "
              f"{micro['transport_speedup']:.1f}x")
    else:
        print("shm    : unsupported on this platform (pickle fallback)")

    print("== end-to-end warm searches (process backend) ==")
    for r in results["end_to_end"]:
        print(f"{r['transport_requested']:>7} (used {r['transport_used']}): "
              f"cold {r['t_cold_s']:.3f}s warm {r['t_warm_s']:.3f}s "
              f"identical={r['identical']}")
    auto = results["auto_small_n"]
    print(f"# transport=auto at n={auto['n']}: stayed on {auto['transport']}")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    if not all(r["identical"] for r in results["end_to_end"]):
        raise SystemExit("FAIL: shm-transport results diverge from sequential")
    if not auto["auto_stays_pickle"]:
        raise SystemExit("FAIL: transport=auto left the pickle path at small n")
    if micro["shm_supported"]:
        if micro["payload_cut"] < 3.0:
            raise SystemExit(
                f"FAIL: descriptor payload only {micro['payload_cut']:.1f}x "
                "smaller than the pickle payload (>= 3x required)"
            )
        if not args.quick and micro["transport_speedup"] < 0.6:
            raise SystemExit(
                f"FAIL: shm transport {micro['transport_speedup']:.1f}x vs "
                "the pickle path at n=2^16 — slower beyond noise"
            )
        shm_row = next(
            r for r in results["end_to_end"]
            if r["transport_requested"] == "shm"
        )
        pickle_row = next(
            r for r in results["end_to_end"]
            if r["transport_requested"] == "pickle"
        )
        wall = pickle_row["t_warm_s"] / shm_row["t_warm_s"]
        print(f"# end-to-end warm shm-vs-pickle: {wall:.2f}x")
        if not args.quick and wall < 0.6:
            raise SystemExit(
                f"FAIL: end-to-end shm {wall:.2f}x vs pickle — slower "
                "beyond noise"
            )
    else:
        print("# shm unsupported: transport acceptance recorded as skipped")
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
