"""E15 — Tables I & II: platform and workload parameter registries.

These are configuration tables; the benchmark validates that every row
the paper publishes is encoded in the library and times the (trivial)
registry access so the harness covers all tables uniformly.
"""

from repro.perf.models import PLATFORMS
from repro.workloads.params import LARGE_N, N_QUERIES, WORKLOADS


def test_table1_platforms(benchmark, report):
    specs = benchmark(lambda: list(PLATFORMS.values()))
    rows = [
        [p.name, p.kind, p.cores if p.cores else "N/A", p.process_nm,
         int(p.clock_mhz), f"{p.dynamic_power_w:.1f}"]
        for p in specs
    ]
    report(
        "Table I: Evaluated platforms (+ calibrated dynamic power)",
        ["Platform", "Type", "Cores", "Process (nm)", "Clock (MHz)", "Pdyn (W)"],
        rows,
    )
    assert len(specs) == 6


def test_table2_workloads(benchmark, report):
    ws = benchmark(lambda: list(WORKLOADS.values()))
    rows = [
        [w.name, w.d, w.k, w.small_n, w.board_capacity,
         w.n_partitions(LARGE_N)]
        for w in ws
    ]
    report(
        f"Table II: kNN workload parameters ({N_QUERIES} queries)",
        ["Workload", "Dim", "Neighbors", "Small n", "Board cap", "Partitions @2^20"],
        rows,
    )
    assert [w.d for w in ws] == [64, 128, 256]
    assert [w.k for w in ws] == [2, 4, 16]
