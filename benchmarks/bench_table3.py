"""E4 — Table III: small-dataset run time and energy efficiency.

Small datasets (512-1024 points) fit in one AP board configuration, so
the AP pays no reconfiguration and wins by an order of magnitude over
CPUs.  The benchmark (a) regenerates the full model table against the
paper's numbers, and (b) times the *live* counterparts on this machine
(vectorized CPU scan, FPGA cycle simulator, functional AP engine) to
confirm who-wins ordering is not an artifact of the model.
"""

import numpy as np
import pytest

from benchmarks.conftest import fmt
from repro.baselines.cpu import CPUHammingKnn
from repro.baselines.fpga import FPGAKnnAccelerator
from repro.core.engine import APSimilaritySearch
from repro.perf.energy import queries_per_joule
from repro.perf.models import (
    CORTEX_MODEL,
    JETSON_MODEL,
    KINTEX_MODEL,
    XEON_MODEL,
    ap_gen1_model,
)
from repro.workloads.generators import uniform_binary
from repro.workloads.params import N_QUERIES, WORKLOADS

PAPER_RUNTIME_MS = {
    # workload -> [Xeon, CortexA15, JetsonTK1, Kintex7, AP Gen1]
    "kNN-WordEmbed": [23.33, 103.63, 125.80, 1.89, 1.97],
    "kNN-SIFT": [37.50, 191.44, 155.94, 3.78, 3.94],
    "kNN-TagSpace": [33.97, 185.34, 160.15, 4.33, 7.88],
}
PAPER_QPJ = {
    "kNN-WordEmbed": [3344, 4941, 27133, 579214, 110445],
    "kNN-SIFT": [2081, 2674, 21889, 289607, 44603],
    "kNN-TagSpace": [2297, 2762, 21314, 253406, 22301],
}
COLS = ["Xeon E5-2620", "Cortex A15", "Jetson TK1", "Kintex-7", "AP Gen 1"]


def model_row_ms(w):
    q, n, d = N_QUERIES, w.small_n, w.d
    ap1 = ap_gen1_model()
    return [
        XEON_MODEL.runtime_s(n, q, d) * 1e3,
        CORTEX_MODEL.runtime_s(n, q, d) * 1e3,
        JETSON_MODEL.runtime_s(n, q, d) * 1e3,
        KINTEX_MODEL.runtime_s(n, q, d) * 1e3,
        ap1.runtime_for(w, n, q) * 1e3,
    ]


def model_row_qpj(w):
    q, n, d = N_QUERIES, w.small_n, w.d
    powers = [52.5, 8.0, 1.2, 3.74]
    times = model_row_ms(w)[:4]
    out = [queries_per_joule(q, p, t / 1e3) for p, t in zip(powers, times)]
    ap1 = ap_gen1_model()
    out.append(
        queries_per_joule(q, ap1.power_w(d), ap1.runtime_for(w, n, q))
    )
    return out


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_table3_models(benchmark, report, wname):
    w = WORKLOADS[wname]
    got_ms = benchmark(model_row_ms, w)
    got_qpj = model_row_qpj(w)
    rows = []
    for i, col in enumerate(COLS):
        rows.append(
            [col,
             fmt(got_ms[i]), fmt(PAPER_RUNTIME_MS[wname][i]),
             fmt(got_qpj[i], 4), fmt(float(PAPER_QPJ[wname][i]), 4)]
        )
    report(
        f"Table III ({wname}, n={w.small_n}): run time (ms) & queries/J",
        ["Platform", "Model ms", "Paper ms", "Model q/J", "Paper q/J"],
        rows,
    )
    for got, paper in zip(got_ms, PAPER_RUNTIME_MS[wname]):
        assert got == pytest.approx(paper, rel=0.12)
    # Winner ordering: AP and FPGA are the two fastest platforms.
    order = np.argsort(got_ms)
    assert set(order[:2].tolist()) == {3, 4}


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_table3_live_cpu_scan(benchmark, wname):
    """Live check of the CPU row's workload shape (vectorized scan)."""
    w = WORKLOADS[wname]
    data = uniform_binary(w.small_n, w.d, seed=1)
    queries = uniform_binary(256, w.d, seed=2)
    cpu = CPUHammingKnn(data)
    res = benchmark(cpu.search, queries, w.k)
    assert res.indices.shape == (256, w.k)


@pytest.mark.parametrize("wname", ["kNN-SIFT"])
def test_table3_live_ap_vs_fpga(benchmark, report, wname):
    """Functional AP engine and FPGA simulator on the same small set."""
    w = WORKLOADS[wname]
    data = uniform_binary(w.small_n, w.d, seed=3)
    queries = uniform_binary(128, w.d, seed=4)
    engine = APSimilaritySearch(data, k=w.k, board_capacity=w.board_capacity,
                                execution="functional")
    res = benchmark(engine.search, queries)
    fpga_i, _, stats = FPGAKnnAccelerator(data).search(queries, w.k)
    assert (res.indices == fpga_i).all()
    ap_t = engine.estimated_runtime_s(len(queries))
    report(
        f"Table III live cross-check ({wname}, 128 queries)",
        ["Backend", "Device-model time (ms)"],
        [["AP Gen 1 (d cycles/query)", fmt(ap_t * 1e3)],
         ["Kintex-7 (cycle sim)", fmt(stats.device_time_s * 1e3)]],
    )
