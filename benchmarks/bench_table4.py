"""E5 — Table IV: large-dataset (2^20 points) run time and energy.

The large dataset exceeds one board image, so AP Gen 1 drowns in 45 ms
reconfigurations (>= 98 % of its run time), Gen 2's ~100x faster reloads
recover a 19.4x speedup, and the Opt+Ext projection divides by the
Table VIII compounded gains.  The benchmark regenerates all eight
platform columns from the calibrated models and validates the paper's
headline ratios; a scaled-down live run confirms the engine's
reconfiguration accounting produces exactly n/capacity board loads.
"""

import pytest

from benchmarks.conftest import fmt
from repro.core.engine import APSimilaritySearch
from repro.perf.energy import queries_per_joule
from repro.perf.models import (
    CORTEX_MODEL,
    JETSON_MODEL,
    KINTEX_MODEL,
    TITANX_MODEL,
    XEON_MODEL,
    ap_gen1_model,
    ap_gen2_model,
    ap_opt_ext_model,
)
from repro.workloads.generators import uniform_binary
from repro.workloads.params import LARGE_N, N_QUERIES, WORKLOADS

PAPER_RUNTIME_S = {
    # [Xeon, A15, TK1, TitanX, K7, Gen1, Gen2, Opt+Ext]
    "kNN-WordEmbed": [19.89, 109.06, 16.09, 0.99, 1.85, 48.10, 2.48, 0.039],
    "kNN-SIFT": [33.18, 199.5, 16.73, 1.02, 3.69, 50.11, 4.50, 0.062],
    "kNN-TagSpace": [60.12, 382.82, 16.41, 1.03, 7.38, 108.31, 17.07, 0.23],
}
PAPER_QPJ = {
    "kNN-WordEmbed": [3.92, 4.69, 212.14, 83.84, 593.89, 4.53, 87.81, 1737.92],
    "kNN-SIFT": [2.35, 2.57, 204.02, 81.94, 296.95, 4.34, 48.40, 1091.86],
    "kNN-TagSpace": [1.30, 1.34, 208.00, 81.05, 148.47, 1.62, 10.20, 236.30],
}
OPT_EXT = {"kNN-WordEmbed": 63.14, "kNN-SIFT": 71.96, "kNN-TagSpace": 73.17}
COLS = ["Xeon E5-2620", "Cortex A15", "Jetson TK1", "Titan X", "Kintex-7",
        "AP Gen 1", "AP Gen 2", "AP Opt+Ext"]


def model_rows(w):
    q, n, d = N_QUERIES, LARGE_N, w.d
    ap1, ap2 = ap_gen1_model(), ap_gen2_model()
    apx = ap_opt_ext_model(OPT_EXT[w.name])
    times = [
        XEON_MODEL.runtime_s(n, q, d),
        CORTEX_MODEL.runtime_s(n, q, d),
        JETSON_MODEL.runtime_s(n, q, d),
        TITANX_MODEL.runtime_s(n, q, d),
        KINTEX_MODEL.runtime_s(n, q, d),
        ap1.runtime_for(w, n, q),
        ap2.runtime_for(w, n, q),
        apx.runtime_for(w, n, q),
    ]
    powers = [52.5, 8.0, 1.2, 49.4, 3.74,
              ap1.power_w(d), ap2.power_w(d), apx.power_w(d)]
    qpj = [queries_per_joule(q, p, t) for p, t in zip(powers, times)]
    return times, qpj


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_table4_models(benchmark, report, wname):
    w = WORKLOADS[wname]
    times, qpj = benchmark(model_rows, w)
    rows = [
        [c, fmt(times[i]), fmt(PAPER_RUNTIME_S[wname][i]),
         fmt(qpj[i], 4), fmt(PAPER_QPJ[wname][i], 4)]
        for i, c in enumerate(COLS)
    ]
    report(
        f"Table IV ({wname}, n=2^20): run time (s) & queries/J",
        ["Platform", "Model s", "Paper s", "Model q/J", "Paper q/J"],
        rows,
    )
    for got, paper in zip(times, PAPER_RUNTIME_S[wname]):
        assert got == pytest.approx(paper, rel=0.10)
    # Shape assertions from the paper's narrative:
    assert times[5] > times[0]  # Gen 1 loses to the Xeon at 2^20 (reconfig)
    assert times[5] / times[6] > 5  # Gen 2 recovers 6-19x depending on d
    assert times[7] < times[3]  # Opt+Ext overtakes even the Titan X


def test_table4_headline_ratios(benchmark, report):
    def ratios():
        w = WORKLOADS["kNN-WordEmbed"]
        g1 = ap_gen1_model().runtime_for(w, LARGE_N, N_QUERIES)
        g2 = ap_gen2_model().runtime_for(w, LARGE_N, N_QUERIES)
        parts = LARGE_N // w.board_capacity
        reconfig_frac = parts * 45e-3 / g1
        return g1 / g2, reconfig_frac

    gap, frac = benchmark(ratios)
    report(
        "Table IV headline ratios (kNN-WordEmbed)",
        ["Quantity", "Model", "Paper"],
        [["Gen1 / Gen2 speedup", fmt(gap), "19.4x"],
         ["Gen1 reconfiguration share", f"{frac:.1%}", ">= 98%"]],
    )
    assert gap == pytest.approx(19.4, rel=0.05)
    assert frac > 0.95


def test_table4_live_partitioned_engine(benchmark, report):
    """Scaled-down live run: the engine's counters must show exactly
    n/capacity configurations, the mechanism behind the Gen 1 column."""
    d, cap, n = 64, 256, 4096
    data = uniform_binary(n, d, seed=5)
    queries = uniform_binary(64, d, seed=6)
    engine = APSimilaritySearch(data, k=2, board_capacity=cap,
                                execution="functional")
    res = benchmark(engine.search, queries)
    assert res.counters.configurations == n // cap
    report(
        "Live partitioned engine (scaled: n=4096, cap=256)",
        ["Configurations", "Symbols streamed", "Reports"],
        [[res.counters.configurations, res.counters.symbols_streamed,
          res.counters.reports_received]],
    )
