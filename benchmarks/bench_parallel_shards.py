"""Sharded parallel partition execution + board-image cache.

Two production levers on the Section III-C flow:

* fan independent board partitions across worker processes
  (``repro.host.parallel``) — exactness is preserved by the host-side
  merge, so sharded results must be bit-identical to sequential ones
  while wall-clock time approaches ``T_seq / workers`` on a multi-core
  host;
* reuse compiled board images across searches through the LRU
  content-addressed cache (``repro.ap.compiler.BoardImageCache``) —
  the in-memory version of the paper's "precompiled board images"
  assumption, measured here as the second-run compile-time reduction.

Runs under the pytest-benchmark harness like the other benchmarks, or
standalone: ``python benchmarks/bench_parallel_shards.py [--quick]``
(writing ``BENCH_parallel.json`` next to the other trajectories).
"""

import json
import time

import numpy as np


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def run_parallel_parity(n=6144, d=64, n_queries=48, cap=512, workers=(2, 4)):
    """Sequential vs sharded functional search; returns timing rows."""
    from repro import APSimilaritySearch

    data, queries = _workload(n, d, n_queries)
    seq_engine = APSimilaritySearch(
        data, k=8, board_capacity=cap, execution="functional"
    )
    t0 = time.perf_counter()
    seq = seq_engine.search(queries)
    t_seq = time.perf_counter() - t0

    rows = [{"workers": 1, "t_s": t_seq, "speedup": 1.0, "identical": True}]
    for w in workers:
        eng = APSimilaritySearch(
            data, k=8, board_capacity=cap, execution="functional", parallel=w
        )
        t0 = time.perf_counter()
        res = eng.search(queries)
        t_w = time.perf_counter() - t0
        identical = bool(
            (res.indices == seq.indices).all()
            and (res.distances == seq.distances).all()
            and res.counters == seq.counters
        )
        rows.append({
            "workers": w, "t_s": t_w, "speedup": t_seq / t_w,
            "identical": identical,
        })
    return rows, seq.n_partitions


def run_cache_compile_reduction(n=48, d=16, n_queries=6, cap=12):
    """Cold vs warm simulate-mode search through the board-image cache."""
    from repro import APSimilaritySearch
    from repro.ap.compiler import BoardImageCache

    data, queries = _workload(n, d, n_queries, seed=42)
    cache = BoardImageCache()
    engine = APSimilaritySearch(
        data, k=4, board_capacity=cap, execution="simulate", cache=cache
    )
    t0 = time.perf_counter()
    cold = engine.search(queries)
    t_cold = time.perf_counter() - t0
    t0 = time.perf_counter()
    warm = engine.search(queries)
    t_warm = time.perf_counter() - t0
    identical = bool(
        (cold.indices == warm.indices).all()
        and (cold.distances == warm.distances).all()
    )
    return {
        "t_cold": t_cold,
        "t_warm": t_warm,
        "hits": cache.stats.hits,
        "misses": cache.stats.misses,
        "warm_hits": warm.counters.image_cache_hits,
        "n_partitions": cold.n_partitions,
        "identical": identical,
    }


# -- pytest harness ------------------------------------------------------


def test_parallel_shard_parity(benchmark, report):
    rows, _n_partitions = benchmark.pedantic(
        run_parallel_parity, rounds=1, iterations=1
    )
    report(
        "Sharded parallel functional search (n=6144, cap=512 -> 12 partitions)",
        ["Workers", "Wall time (s)", "Speedup", "Bit-identical"],
        [[r["workers"], f"{r['t_s']:.3f}", f"{r['speedup']:.2f}x",
          r["identical"]] for r in rows],
    )
    assert all(r["identical"] for r in rows)


def test_cache_compile_reduction(benchmark, report):
    stats = benchmark.pedantic(run_cache_compile_reduction, rounds=1, iterations=1)
    report(
        "Board-image cache: cold vs warm simulate-mode search",
        ["Run", "Wall time (s)", "Cache hits"],
        [
            ["cold", f"{stats['t_cold']:.3f}", 0],
            ["warm", f"{stats['t_warm']:.3f}", stats["warm_hits"]],
        ],
    )
    assert stats["identical"]
    assert stats["warm_hits"] == stats["n_partitions"]
    # warm run skips network build + placement + simulator construction
    assert stats["t_warm"] < stats["t_cold"]


# -- standalone entry point ----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--quick", action="store_true",
        help="small workload for CI smoke runs",
    )
    parser.add_argument("--out", default="BENCH_parallel.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    if args.quick:
        rows, n_parts = run_parallel_parity(
            n=600, d=32, n_queries=8, cap=128, workers=(2,)
        )
    else:
        rows, n_parts = run_parallel_parity()
    print(f"== sharded parallel functional search ({n_parts} partitions) ==")
    print(f"{'workers':>8} {'time_s':>8} {'speedup':>8} {'identical':>10}")
    for r in rows:
        print(f"{r['workers']:>8} {r['t_s']:>8.3f} {r['speedup']:>7.2f}x "
              f"{r['identical']!s:>10}")
        if not r["identical"]:
            raise SystemExit("FAIL: sharded results diverge from sequential")

    stats = run_cache_compile_reduction()
    print("== board-image cache (simulate mode) ==")
    print(f"cold run: {stats['t_cold']:.3f}s  warm run: {stats['t_warm']:.3f}s "
          f"({stats['t_cold'] / max(stats['t_warm'], 1e-9):.2f}x)  "
          f"hits={stats['hits']}/{stats['hits'] + stats['misses']}")
    if not stats["identical"]:
        raise SystemExit("FAIL: cached results diverge")
    if stats["warm_hits"] != stats["n_partitions"]:
        raise SystemExit("FAIL: warm run missed the cache")

    with open(args.out, "w") as f:
        json.dump({
            "parity": {"rows": rows, "n_partitions": n_parts},
            "cache": stats,
            "quick": args.quick,
        }, f, indent=2)
    print(f"# results written to {args.out}")
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
