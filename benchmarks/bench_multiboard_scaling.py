"""Multi-board scale-out: measured wall-clock across devices × backends.

`bench_multiboard.py` sweeps the *modeled* device-side scaling curve;
this benchmark measures the **host side** the model takes for granted:
:class:`~repro.core.multiboard.MultiBoardSearch` now fans every
device's board-partition passes out through `repro.host.parallel`, and
that fan-out has to pay for itself in real seconds, not model seconds.

Four passes, all on the functional back-end:

* **devices × backends sweep** — wall-clock per search for 1/2/4
  devices under serial, thread, process (pickle transport pinned), and
  process+shm pools, warm compile cache (the steady state of a
  long-lived service), each verified bit-identical to a single
  sequential engine over the full dataset.  Every row records its
  parent→worker **IPC payload bytes** (pickled task size vs shm
  descriptor size), so the transport win is visible next to the
  timings;
* **speedup acceptance** — warm-cache multi-device thread execution
  must beat the warm single-device serial baseline (full sizes only;
  --quick records without asserting), and at n=2^16 the shm transport
  must cut the payload >= 3x without losing wall clock to the pickle
  path (`bench_shm_transport.py` enforces the transport-isolated
  speedup figure);
* **auto-fallback check** — `transport="auto"` must keep small
  searches on the pickle path (never slower at small n);
* **warm-start demo** — a search over a `BoardImageCache(cache_dir=)`
  populated by a previous cache *instance* (a simulated service
  restart) must report **zero recompiles** via the runtime counters.

Timings land in ``BENCH_multiboard.json`` next to
``BENCH_functional.json`` so CI records the trajectory run over run.
Runs under the pytest-benchmark harness like the other benchmarks, or
standalone:
``python benchmarks/bench_multiboard_scaling.py [--quick] [--out PATH]``.
"""

import json
import os
import shutil
import tempfile
import time

import numpy as np


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


# (label, pool backend, task-payload transport): "process" pins the
# classic pickle path so the "process+shm" rows measure exactly what
# the shared-memory transport buys at the same pool flavor.
SWEEP_BACKENDS = (
    ("serial", "serial", "pickle"),
    ("thread", "thread", "pickle"),
    ("process", "process", "pickle"),
    ("process+shm", "process", "shm"),
)


def run_device_backend_sweep(n, d, q, k, cap, device_counts, n_workers,
                             warm_rounds=3):
    """Warm-cache wall clock for every (devices, backend) pair.

    Each row also records ``ipc_payload_bytes`` — the parent→worker
    submission size of one warm search (pickled task bytes on the
    pickle path, descriptor bytes under shm; 0 for in-process pools) —
    so the transport win is visible next to the timings.  Warm time is
    the best of ``warm_rounds`` searches.
    """
    from repro.ap.compiler import BoardImageCache
    from repro.core.engine import APSimilaritySearch
    from repro.core.multiboard import MultiBoardSearch
    from repro.host.parallel import ParallelConfig

    data, queries = _workload(n, d, q)
    ref = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional"
    ).search(queries)

    rows = []
    for n_devices in device_counts:
        for label, backend, transport in SWEEP_BACKENDS:
            parallel = ParallelConfig(
                n_workers=n_workers, backend=backend, transport=transport,
                persistent=True,
            )
            cache = BoardImageCache(max_entries=256)
            with parallel:
                mb = MultiBoardSearch(
                    data, k=k, n_devices=n_devices, board_capacity=cap,
                    execution="functional", parallel=parallel, cache=cache,
                )
                t_cold, cold = _time(lambda: mb.search(queries))
                t_warm, warm = _time(lambda: mb.search(queries))
                for _ in range(warm_rounds - 1):
                    t_again, warm = _time(lambda: mb.search(queries))
                    t_warm = min(t_warm, t_again)
            # Payload measured on a one-shot measured config over the
            # same warm cache (measurement pays an extra pickle pass,
            # so it never runs inside the timed loop above).
            measured = MultiBoardSearch(
                data, k=k, n_devices=n_devices, board_capacity=cap,
                execution="functional", cache=cache,
                parallel=ParallelConfig(
                    n_workers=n_workers, backend=backend,
                    transport=transport, measure_ipc=True,
                ),
            ).search(queries)
            total_parts = sum(warm.per_device_partitions)
            rows.append({
                "n": n, "d": d, "q": q, "k": k, "cap": cap,
                "devices": n_devices, "backend": label,
                "transport": warm.transport,
                "workers": warm.n_workers,
                "t_cold_s": t_cold, "t_warm_s": t_warm,
                "ipc_payload_bytes": measured.ipc_payload_bytes,
                "warm_cache_hits": warm.counters.image_cache_hits,
                "partitions": total_parts,
                "identical": bool(
                    (cold.indices == ref.indices).all()
                    and (cold.distances == ref.distances).all()
                    and (warm.indices == ref.indices).all()
                    and (warm.distances == ref.distances).all()
                    and (measured.indices == ref.indices).all()
                ),
            })
    return rows


def run_auto_transport_small_n_check(n=1 << 10, d=64, q=8, k=5, cap=256):
    """transport="auto" must keep small searches on the pickle path —
    the "never slower at small n" half of the shm acceptance."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import ParallelConfig

    data, queries = _workload(n, d, q, seed=5)
    res = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional",
        parallel=ParallelConfig(n_workers=2, backend="process",
                                transport="auto"),
    ).search(queries)
    return {"n": n, "transport": res.transport,
            "auto_stays_pickle": res.transport == "pickle"}


def run_warm_start_demo(n, d, q, k, cap, n_devices):
    """Simulated service restart: a fresh cache over the same cache_dir
    must serve every partition from disk — zero recompiles."""
    from repro.ap.compiler import BoardImageCache
    from repro.core.multiboard import MultiBoardSearch

    data, queries = _workload(n, d, q, seed=77)
    cache_dir = tempfile.mkdtemp(prefix="bench_multiboard_cache_")
    try:
        first = MultiBoardSearch(
            data, k=k, n_devices=n_devices, board_capacity=cap,
            execution="functional",
            cache=BoardImageCache(cache_dir=cache_dir),
        )
        t_first, r1 = _time(lambda: first.search(queries))
        # fresh cache instance over the same directory = restarted service
        restarted = MultiBoardSearch(
            data, k=k, n_devices=n_devices, board_capacity=cap,
            execution="functional",
            cache=BoardImageCache(cache_dir=cache_dir),
        )
        t_restart, r2 = _time(lambda: restarted.search(queries))
        total_parts = sum(r2.per_device_partitions)
        return {
            "n": n, "devices": n_devices, "partitions": total_parts,
            "t_first_s": t_first, "t_restarted_s": t_restart,
            "first_recompiles": sum(r1.per_device_partitions)
            - r1.counters.image_cache_hits,
            "restart_recompiles": total_parts - r2.counters.image_cache_hits,
            "restart_disk_hits": restarted.cache.stats.disk_hits,
            "identical": bool(
                (r1.indices == r2.indices).all()
                and (r1.distances == r2.distances).all()
            ),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_all(quick=False):
    if quick:
        sweep = run_device_backend_sweep(
            n=1 << 11, d=64, q=16, k=10, cap=256,
            device_counts=(1, 2), n_workers=2, warm_rounds=2,
        )
        warm_start = run_warm_start_demo(
            n=1 << 10, d=64, q=8, k=10, cap=256, n_devices=2
        )
    else:
        # Big enough that one partition pass is tens of milliseconds of
        # GIL-releasing kernel work — the regime where the pool's task
        # overhead is noise and thread fan-out tracks core count — and
        # the per-task pickle payload (query batch + warm artifact) is
        # what the process rows actually measure.  n=2^16 is the shm
        # transport's acceptance point.
        sweep = run_device_backend_sweep(
            n=1 << 16, d=128, q=256, k=10, cap=1 << 12,
            device_counts=(1, 2, 4), n_workers=4,
        )
        warm_start = run_warm_start_demo(
            n=1 << 14, d=64, q=32, k=10, cap=512, n_devices=4
        )
    return {
        "sweep": sweep,
        "warm_start": warm_start,
        "auto_small_n": run_auto_transport_small_n_check(),
        "quick": quick,
        "cores": _available_cores(),
    }


def _speedup_rows(sweep):
    """Warm multi-device speedup over the warm 1-device serial baseline."""
    base = next(
        r["t_warm_s"] for r in sweep
        if r["devices"] == 1 and r["backend"] == "serial"
    )
    return [
        {**r, "speedup_vs_serial_1dev": base / max(r["t_warm_s"], 1e-12)}
        for r in sweep
    ]


# -- pytest harness -------------------------------------------------------


def test_multiboard_scaling_smoke(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    report(
        "Multi-board scale-out: devices x backends (quick sizes, warm cache)",
        ["Devices", "Backend", "t_cold (s)", "t_warm (s)", "IPC bytes",
         "Bit-identical"],
        [
            [r["devices"], r["backend"], f"{r['t_cold_s']:.3f}",
             f"{r['t_warm_s']:.3f}", r["ipc_payload_bytes"], r["identical"]]
            for r in results["sweep"]
        ],
    )
    assert all(r["identical"] for r in results["sweep"])
    assert all(
        r["warm_cache_hits"] == r["partitions"] for r in results["sweep"]
    )
    # shm descriptors must be radically smaller than pickled payloads
    # whenever the shm transport actually engaged
    from repro.host.shm import shm_available

    if shm_available():
        for r in results["sweep"]:
            if r["backend"] == "process+shm" and r["transport"] == "shm":
                pickle_row = next(
                    p for p in results["sweep"]
                    if p["devices"] == r["devices"] and p["backend"] == "process"
                )
                assert r["ipc_payload_bytes"] < pickle_row["ipc_payload_bytes"]
    assert results["auto_small_n"]["auto_stays_pickle"]
    ws = results["warm_start"]
    assert ws["identical"]
    assert ws["restart_recompiles"] == 0
    assert ws["restart_disk_hits"] == ws["partitions"]


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_multiboard.json",
                        help="write timing rows to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    results["sweep"] = _speedup_rows(results["sweep"])

    print("== multi-board sweep: devices x backends (warm compile cache) ==")
    print(f"{'devices':>8} {'backend':>12} {'t_cold_s':>9} {'t_warm_s':>9} "
          f"{'speedup':>8} {'ipc_bytes':>12} {'identical':>10}")
    for r in results["sweep"]:
        ipc = r["ipc_payload_bytes"]
        print(f"{r['devices']:>8} {r['backend']:>12} {r['t_cold_s']:>9.3f} "
              f"{r['t_warm_s']:>9.3f} {r['speedup_vs_serial_1dev']:>7.2f}x "
              f"{ipc if ipc is not None else '-':>12} "
              f"{r['identical']!s:>10}")
    auto = results["auto_small_n"]
    print(f"# transport=auto at small n={auto['n']}: "
          f"stayed on {auto['transport']} (never-slower fallback)")

    ws = results["warm_start"]
    print("== warm start from cache_dir (simulated service restart) ==")
    print(f"first run:     {ws['t_first_s']:.3f}s "
          f"({ws['first_recompiles']} recompiles)")
    print(f"restarted run: {ws['t_restarted_s']:.3f}s "
          f"({ws['restart_recompiles']} recompiles, "
          f"{ws['restart_disk_hits']} disk hits)")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# timings written to {args.out}")

    ok = (
        all(r["identical"] for r in results["sweep"])
        and results["auto_small_n"]["auto_stays_pickle"]
        and ws["identical"]
        and ws["restart_recompiles"] == 0
        and ws["restart_disk_hits"] == ws["partitions"]
    )
    if not ok:
        raise SystemExit(
            "FAIL: multi-board results diverge, the warm start recompiled, "
            "or transport=auto left the pickle path at small n"
        )
    if not args.quick:
        best = max(
            r["speedup_vs_serial_1dev"] for r in results["sweep"]
            if r["devices"] >= 2 and r["backend"] != "serial"
        )
        print(f"# best warm multi-device speedup: {best:.2f}x "
              f"({results['cores']} core(s) available)")
        if results["cores"] >= 2 and best < 1.3:
            raise SystemExit(
                f"FAIL: warm multi-device speedup {best:.2f}x < 1.3x "
                f"acceptance over the 1-device serial baseline on "
                f"{results['cores']} cores"
            )
        if results["cores"] < 2:
            # A single-core host cannot show real fan-out speedup; the
            # measured figure is still recorded in the JSON trajectory.
            print("# <2 cores: speedup acceptance recorded, not enforced")
        _check_shm_speedup(results)
    print("ok")
    return 0


def _check_shm_speedup(results):
    """Acceptance for the shm transport at the sweep's n=2^16.

    Enforced here, because they hold wherever shm works at all:

    * the parent→worker payload must shrink >= 3x (in practice it
      shrinks by orders of magnitude — descriptors replace data);
    * warm wall clock must never lose to the pickle path beyond
      measurement noise (the auto fallback separately guarantees small
      searches stay on pickle).

    The warm wall-clock *speedup* is printed and recorded in the JSON
    trajectory but deliberately NOT gated at 3x: it reaches 3x+ only
    on hosts where IPC payload — not kernel compute or pool dispatch
    latency — bounds the process backend (on memcpy-bound-pickle hosts
    like CI containers both paths time alike and a wall gate would be
    noise).  ``bench_shm_transport.py`` isolates the transport cost
    itself and applies the same payload-cut and never-slower gates to
    it, recording its measured speedup alongside.
    """
    pairs = []
    for r in results["sweep"]:
        if r["backend"] != "process+shm" or r["transport"] != "shm":
            continue
        pickle_row = next(
            p for p in results["sweep"]
            if p["devices"] == r["devices"] and p["backend"] == "process"
        )
        pairs.append((r["devices"], pickle_row, r))
    if not pairs:
        print("# shm transport unavailable: acceptance checks skipped")
        return
    print("# shm-vs-pickle at n=2^16 (warm): "
          + ", ".join(
              f"{d}dev {p['t_warm_s'] / s['t_warm_s']:.2f}x wall, "
              f"{p['ipc_payload_bytes'] / max(s['ipc_payload_bytes'], 1):.0f}x "
              f"payload"
              for d, p, s in pairs
          ))
    for d, pickle_row, shm_row in pairs:
        payload_cut = pickle_row["ipc_payload_bytes"] / max(
            shm_row["ipc_payload_bytes"], 1
        )
        if payload_cut < 3.0:
            raise SystemExit(
                f"FAIL: shm payload only {payload_cut:.1f}x smaller than "
                f"pickle at {d} devices (>= 3x required)"
            )
        wall = pickle_row["t_warm_s"] / shm_row["t_warm_s"]
        if wall < 0.6:
            raise SystemExit(
                f"FAIL: shm transport {wall:.2f}x vs pickle at {d} devices "
                f"— slower beyond measurement noise"
            )


if __name__ == "__main__":
    raise SystemExit(main())
