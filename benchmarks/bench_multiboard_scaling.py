"""Multi-board scale-out: measured wall-clock across devices × backends.

`bench_multiboard.py` sweeps the *modeled* device-side scaling curve;
this benchmark measures the **host side** the model takes for granted:
:class:`~repro.core.multiboard.MultiBoardSearch` now fans every
device's board-partition passes out through `repro.host.parallel`, and
that fan-out has to pay for itself in real seconds, not model seconds.

Three passes, all on the functional back-end:

* **devices × backends sweep** — wall-clock per search for 1/2/4
  devices under serial, thread, and process pools, warm compile cache
  (the steady state of a long-lived service), each verified
  bit-identical to a single sequential engine over the full dataset;
* **speedup acceptance** — warm-cache multi-device thread execution
  must beat the warm single-device serial baseline (full sizes only;
  --quick records without asserting);
* **warm-start demo** — a search over a `BoardImageCache(cache_dir=)`
  populated by a previous cache *instance* (a simulated service
  restart) must report **zero recompiles** via the runtime counters.

Timings land in ``BENCH_multiboard.json`` next to
``BENCH_functional.json`` so CI records the trajectory run over run.
Runs under the pytest-benchmark harness like the other benchmarks, or
standalone:
``python benchmarks/bench_multiboard_scaling.py [--quick] [--out PATH]``.
"""

import json
import os
import shutil
import tempfile
import time

import numpy as np


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


def run_device_backend_sweep(n, d, q, k, cap, device_counts, n_workers):
    """Warm-cache wall clock for every (devices, backend) pair."""
    from repro.ap.compiler import BoardImageCache
    from repro.core.engine import APSimilaritySearch
    from repro.core.multiboard import MultiBoardSearch
    from repro.host.parallel import ParallelConfig

    data, queries = _workload(n, d, q)
    ref = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional"
    ).search(queries)

    rows = []
    for n_devices in device_counts:
        for backend in ("serial", "thread", "process"):
            parallel = ParallelConfig(
                n_workers=n_workers, backend=backend, persistent=True
            )
            with parallel:
                mb = MultiBoardSearch(
                    data, k=k, n_devices=n_devices, board_capacity=cap,
                    execution="functional", parallel=parallel,
                    cache=BoardImageCache(max_entries=256),
                )
                t_cold, cold = _time(lambda: mb.search(queries))
                t_warm, warm = _time(lambda: mb.search(queries))
            total_parts = sum(warm.per_device_partitions)
            rows.append({
                "n": n, "d": d, "q": q, "k": k, "cap": cap,
                "devices": n_devices, "backend": backend,
                "workers": warm.n_workers,
                "t_cold_s": t_cold, "t_warm_s": t_warm,
                "warm_cache_hits": warm.counters.image_cache_hits,
                "partitions": total_parts,
                "identical": bool(
                    (cold.indices == ref.indices).all()
                    and (cold.distances == ref.distances).all()
                    and (warm.indices == ref.indices).all()
                    and (warm.distances == ref.distances).all()
                ),
            })
    return rows


def run_warm_start_demo(n, d, q, k, cap, n_devices):
    """Simulated service restart: a fresh cache over the same cache_dir
    must serve every partition from disk — zero recompiles."""
    from repro.ap.compiler import BoardImageCache
    from repro.core.multiboard import MultiBoardSearch

    data, queries = _workload(n, d, q, seed=77)
    cache_dir = tempfile.mkdtemp(prefix="bench_multiboard_cache_")
    try:
        first = MultiBoardSearch(
            data, k=k, n_devices=n_devices, board_capacity=cap,
            execution="functional",
            cache=BoardImageCache(cache_dir=cache_dir),
        )
        t_first, r1 = _time(lambda: first.search(queries))
        # fresh cache instance over the same directory = restarted service
        restarted = MultiBoardSearch(
            data, k=k, n_devices=n_devices, board_capacity=cap,
            execution="functional",
            cache=BoardImageCache(cache_dir=cache_dir),
        )
        t_restart, r2 = _time(lambda: restarted.search(queries))
        total_parts = sum(r2.per_device_partitions)
        return {
            "n": n, "devices": n_devices, "partitions": total_parts,
            "t_first_s": t_first, "t_restarted_s": t_restart,
            "first_recompiles": sum(r1.per_device_partitions)
            - r1.counters.image_cache_hits,
            "restart_recompiles": total_parts - r2.counters.image_cache_hits,
            "restart_disk_hits": restarted.cache.stats.disk_hits,
            "identical": bool(
                (r1.indices == r2.indices).all()
                and (r1.distances == r2.distances).all()
            ),
        }
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)


def run_all(quick=False):
    if quick:
        sweep = run_device_backend_sweep(
            n=1 << 11, d=64, q=16, k=10, cap=256,
            device_counts=(1, 2), n_workers=2,
        )
        warm_start = run_warm_start_demo(
            n=1 << 10, d=64, q=8, k=10, cap=256, n_devices=2
        )
    else:
        # Big enough that one partition pass is tens of milliseconds of
        # GIL-releasing kernel work — the regime where the pool's task
        # overhead is noise and thread fan-out tracks core count.
        sweep = run_device_backend_sweep(
            n=1 << 17, d=128, q=256, k=10, cap=1 << 12,
            device_counts=(1, 2, 4), n_workers=4,
        )
        warm_start = run_warm_start_demo(
            n=1 << 14, d=64, q=32, k=10, cap=512, n_devices=4
        )
    return {
        "sweep": sweep,
        "warm_start": warm_start,
        "quick": quick,
        "cores": _available_cores(),
    }


def _speedup_rows(sweep):
    """Warm multi-device speedup over the warm 1-device serial baseline."""
    base = next(
        r["t_warm_s"] for r in sweep
        if r["devices"] == 1 and r["backend"] == "serial"
    )
    return [
        {**r, "speedup_vs_serial_1dev": base / max(r["t_warm_s"], 1e-12)}
        for r in sweep
    ]


# -- pytest harness -------------------------------------------------------


def test_multiboard_scaling_smoke(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    report(
        "Multi-board scale-out: devices x backends (quick sizes, warm cache)",
        ["Devices", "Backend", "t_cold (s)", "t_warm (s)", "Bit-identical"],
        [
            [r["devices"], r["backend"], f"{r['t_cold_s']:.3f}",
             f"{r['t_warm_s']:.3f}", r["identical"]]
            for r in results["sweep"]
        ],
    )
    assert all(r["identical"] for r in results["sweep"])
    assert all(
        r["warm_cache_hits"] == r["partitions"] for r in results["sweep"]
    )
    ws = results["warm_start"]
    assert ws["identical"]
    assert ws["restart_recompiles"] == 0
    assert ws["restart_disk_hits"] == ws["partitions"]


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_multiboard.json",
                        help="write timing rows to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    results["sweep"] = _speedup_rows(results["sweep"])

    print("== multi-board sweep: devices x backends (warm compile cache) ==")
    print(f"{'devices':>8} {'backend':>8} {'t_cold_s':>9} {'t_warm_s':>9} "
          f"{'speedup':>8} {'identical':>10}")
    for r in results["sweep"]:
        print(f"{r['devices']:>8} {r['backend']:>8} {r['t_cold_s']:>9.3f} "
              f"{r['t_warm_s']:>9.3f} {r['speedup_vs_serial_1dev']:>7.2f}x "
              f"{r['identical']!s:>10}")

    ws = results["warm_start"]
    print("== warm start from cache_dir (simulated service restart) ==")
    print(f"first run:     {ws['t_first_s']:.3f}s "
          f"({ws['first_recompiles']} recompiles)")
    print(f"restarted run: {ws['t_restarted_s']:.3f}s "
          f"({ws['restart_recompiles']} recompiles, "
          f"{ws['restart_disk_hits']} disk hits)")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# timings written to {args.out}")

    ok = (
        all(r["identical"] for r in results["sweep"])
        and ws["identical"]
        and ws["restart_recompiles"] == 0
        and ws["restart_disk_hits"] == ws["partitions"]
    )
    if not ok:
        raise SystemExit(
            "FAIL: multi-board results diverge or the warm start recompiled"
        )
    if not args.quick:
        best = max(
            r["speedup_vs_serial_1dev"] for r in results["sweep"]
            if r["devices"] >= 2 and r["backend"] != "serial"
        )
        print(f"# best warm multi-device speedup: {best:.2f}x "
              f"({results['cores']} core(s) available)")
        if results["cores"] >= 2 and best < 1.3:
            raise SystemExit(
                f"FAIL: warm multi-device speedup {best:.2f}x < 1.3x "
                f"acceptance over the 1-device serial baseline on "
                f"{results['cores']} cores"
            )
        if results["cores"] < 2:
            # A single-core host cannot show real fan-out speedup; the
            # measured figure is still recorded in the JSON trajectory.
            print("# <2 cores: speedup acceptance recorded, not enforced")
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
