"""Ablation — multi-device scale-out (beyond the paper's single board).

Shards the large-dataset workload across D devices: device time divides
by D while correctness is preserved by the host-side merge (the same
merge partial-reconfiguration already requires).  Scaling saturates
once a shard fits a single board configuration.
"""

import pytest

from repro.core.multiboard import MultiBoardSearch
from repro.workloads.generators import uniform_binary
from tests.conftest import brute_force_knn


@pytest.mark.parametrize("n_devices", [1, 2, 4, 8])
def test_multiboard_scaling(benchmark, report, n_devices):
    d, cap = 64, 128
    data = uniform_binary(4096, d, seed=111)
    queries = uniform_binary(32, d, seed=112)
    mb = MultiBoardSearch(data, k=4, n_devices=n_devices, board_capacity=cap)

    res = benchmark(mb.search, queries)

    exp_i, _ = brute_force_knn(data, queries, 4)
    t_model = mb.estimated_runtime_s(4096)
    report(
        f"Multi-device scale-out: {n_devices} device(s), n=4096, cap={cap}",
        ["Devices", "Partitions/device", "Model time (s)", "Exact results"],
        [[n_devices, max(res.per_device_partitions), f"{t_model:.3f}",
          bool((res.indices == exp_i).all())]],
    )
    assert (res.indices == exp_i).all()


def test_scaling_curve(benchmark, report):
    d, cap = 64, 128
    data = uniform_binary(8192, d, seed=113)

    def curve():
        out = {}
        for nd in (1, 2, 4, 8, 16, 64):
            mb = MultiBoardSearch(data, k=1, n_devices=nd, board_capacity=cap)
            out[nd] = mb.estimated_runtime_s(4096)
        return out

    times = benchmark.pedantic(curve, rounds=1, iterations=1)
    t1 = times[1]
    rows = [
        [nd, f"{t:.3f}", f"{t1 / t:.1f}x", f"{t1 / t / nd:.0%}"]
        for nd, t in times.items()
    ]
    report(
        "Scale-out curve (Gen 1, n=8192, cap=128 -> 64 partitions total)",
        ["Devices", "Model time (s)", "Speedup", "Efficiency"],
        rows,
    )
    assert times[2] == pytest.approx(t1 / 2, rel=0.05)
    # 64 partitions over 64 devices: one *preconfigured* board each, so
    # reconfiguration vanishes entirely and scaling turns superlinear
    assert times[64] <= times[1] / 64
