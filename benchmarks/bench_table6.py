"""E7 / E12 — Table VI + Fig. 7: statistical activation reduction.

The paper runs 100 randomized trials per configuration (p = 16,
n = 1024) and reports how often the suppressed result set is incorrect:

    workload      k    k'=1   k'=2   k'=3   k'>=4
    WordEmbed     2    100%     1%     0%      0%
    SIFT          4    100%     1%     0%      0%
    TagSpace     16    100%    72%     5%      0%

The benchmark re-runs the identical Monte-Carlo with our LNC suppression
semantics (a group reports the vectors in its k'-1 nearest *distinct*
distance cohorts — validated cycle-accurately against the Fig. 7
automata in the test suite) and also reports the measured
report-bandwidth reduction versus the paper's p/k' bound.
"""

import pytest

from repro.core.reduction import ReductionModel, bandwidth_reduction
from repro.workloads.params import WORKLOADS

PAPER_TABLE6 = {
    "kNN-WordEmbed": {1: 100, 2: 1, 3: 0, 4: 0},
    "kNN-SIFT": {1: 100, 2: 1, 3: 0, 4: 0},
    "kNN-TagSpace": {1: 100, 2: 72, 3: 5, 4: 0},
}
RUNS = 100
P = 16
N = 1024


def run_row(w):
    out = {}
    for k_prime in (1, 2, 3, 4):
        model = ReductionModel(w.d, w.k, k_prime, p=P, n=N)
        out[k_prime] = 100 * model.incorrect_fraction(RUNS, seed=97 + k_prime)
    return out


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_table6(benchmark, report, wname):
    w = WORKLOADS[wname]
    got = benchmark.pedantic(run_row, args=(w,), rounds=1, iterations=1)
    paper = PAPER_TABLE6[wname]
    rows = [
        [f"k'={kp}", f"{got[kp]:.0f}%", f"{paper[kp]}%",
         f"{bandwidth_reduction(P, kp):.1f}x"]
        for kp in (1, 2, 3, 4)
    ]
    report(
        f"Table VI ({wname}, k={w.k}, p={P}, n={N}, {RUNS} runs): "
        "incorrect results",
        ["Config", "Model", "Paper", "BW reduction (p/k')"],
        rows,
    )
    assert got[1] == 100.0, "k'=1 suppresses the only report: always wrong"
    assert got[4] <= 2.0, "k'>=4 is essentially exact"
    assert abs(got[2] - paper[2]) <= 12, "k'=2 failure rate off-shape"
    assert abs(got[3] - paper[3]) <= 8


def test_measured_bandwidth_reduction(benchmark, report):
    """The mechanism's point: reports sent shrink by ~p/k'."""
    import numpy as np

    w = WORKLOADS["kNN-TagSpace"]

    def measure():
        model = ReductionModel(w.d, w.k, k_prime=4, p=P, n=N)
        rng = np.random.default_rng(7)
        trials = [model.trial(rng) for _ in range(20)]
        return sum(t.reports_sent for t in trials) / len(trials)

    mean_sent = benchmark.pedantic(measure, rounds=1, iterations=1)
    reduction = N / mean_sent
    report(
        "Section VI-C report-traffic reduction (k'=4, p=16)",
        ["Reports/query (full)", "Reports/query (suppressed)",
         "Measured reduction", "Paper bound p/k'"],
        [[N, f"{mean_sent:.0f}", f"{reduction:.1f}x", "4.0x"]],
    )
    assert reduction >= 4.0  # distinct-distance cohorts send <= k'-1 groups
