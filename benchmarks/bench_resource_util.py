"""E3 — Section V-A: board resource utilization per workload.

The paper reports apadmin rectangular-block-area utilizations of
41.7 % / 90.9 % / 78.6 % for kNN-WordEmbed / SIFT / TagSpace (1024,
1024, 512 vectors per board configuration) and notes capacity is
~128 Kb of encoded data per configuration.  The benchmark compiles one
vector macro per workload (placement scales linearly per macro) and
compares the modelled board utilization against the paper.
"""

import numpy as np
import pytest

from repro.ap.compiler import APCompiler
from repro.ap.device import GEN1
from repro.core.macros import build_knn_network, macro_ste_cost
from repro.workloads.params import WORKLOADS

PAPER_UTIL = {"kNN-WordEmbed": 0.417, "kNN-SIFT": 0.909, "kNN-TagSpace": 0.786}


def compile_macro(d: int):
    net, _ = build_knn_network(np.zeros((1, d), dtype=np.uint8))
    return APCompiler().compile(net)


@pytest.mark.parametrize("wname", sorted(WORKLOADS))
def test_utilization(benchmark, report, wname):
    w = WORKLOADS[wname]
    rep = benchmark(compile_macro, w.d)
    n = w.board_capacity
    util = rep.blocks_used * n / GEN1.total_blocks
    rows = [
        [w.name, n, macro_ste_cost(w.d), f"{util:.1%}",
         f"{PAPER_UTIL[wname]:.1%}",
         f"{(util - PAPER_UTIL[wname]) / PAPER_UTIL[wname]:+.1%}"],
        ["encoded bits/board", n * w.d, "", "", "<= 131072 (128 Kb)", ""],
    ]
    report(
        f"Section V-A utilization: {wname}",
        ["Workload", "Vectors/board", "STEs/macro", "Model util",
         "Paper util", "Deviation"],
        rows,
    )
    assert util == pytest.approx(PAPER_UTIL[wname], rel=0.15)
    assert n * w.d <= 128 * 1024
