"""Dataset-store A/B: ArrayStore vs ShmStore vs MmapStore.

The PackedDataset refactor claims four things this benchmark measures
and the regression gate then holds:

* **bit identity** — the same data behind every store answers kNN /
  Jaccard / range queries byte-identically (the refactor's
  non-negotiable; recorded per store × workload);
* **out-of-core serving** — an engine over an mmap-backed ``.pds``
  shard must keep its peak-RSS *growth* under 25% of the packed
  payload size: digesting, compiling, and querying a file-backed
  shard never materializes the payload (measured in a fresh
  subprocess via ``ru_maxrss``; Linux-only — recorded as ``None``
  elsewhere so the gate skips it);
* **zero dataset bytes on the wire** — process workers attach the
  mmap store by path, so the measured IPC payload
  (``ipc_payload_bytes``, pickle transport) drops by the dataset's
  full size versus shipping array slices;
* **provisioning is a file copy** — standing up a second serving
  process from a ``.pds`` costs a copy + header validation, versus
  pickling and pushing the array (the old provisioning floor).

Results land in ``BENCH_dataset.json``.  Runs under pytest or
standalone: ``python benchmarks/bench_dataset_stores.py [--quick]``.
"""

import json
import os
import pickle
import shutil
import subprocess
import sys
import tempfile
import time

import numpy as np

from repro.core.dataset import (
    DatasetFormatError,
    PackedDataset,
    read_pds_header,
    write_pds,
)
from repro.core.engine import APSimilaritySearch
from repro.core.workload import WorkloadSearch
from repro.host.parallel import ParallelConfig
from repro.host.shm import ShmExporter, shm_available


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = (rng.random((n, d)) < 0.5).astype(np.uint8)
    queries = (rng.random((n_queries, d)) < 0.5).astype(np.uint8)
    return data, queries


def _arrays_equal(a, b) -> bool:
    import dataclasses

    fields = [
        f.name for f in dataclasses.fields(a)
        if isinstance(getattr(a, f.name), np.ndarray)
    ]
    return all(
        np.array_equal(getattr(a, f), getattr(b, f)) for f in fields
    )


# -- parity ------------------------------------------------------------------


def run_parity(n, d, q, cap, workdir):
    """Every store × workload, serial: identical to the array store."""
    data, queries = _workload(n, d, q)
    path = os.path.join(workdir, "parity.pds")
    write_pds(path, data)
    stores = {"array": data, "mmap": PackedDataset.open(path)}
    exporter = None
    if shm_available():
        from repro.core.dataset import ShmStore

        exporter = ShmExporter()
        stores["shm"] = PackedDataset(ShmStore.export(data, exporter))
    rows = []
    try:
        for wl, params in [
            ("knn", {"k": 8}),
            ("jaccard", {"k": 8}),
            ("range", {"radius": d // 4}),
        ]:
            base = WorkloadSearch(
                data, wl, params, board_capacity=cap
            ).search(queries)
            for kind, ds in stores.items():
                res = WorkloadSearch(
                    ds, wl, params, board_capacity=cap
                ).search(queries)
                rows.append({
                    "workload": wl,
                    "store": kind,
                    "identical": _arrays_equal(base.value, res.value),
                })
    finally:
        if exporter is not None:
            exporter.close()
    return rows


# -- format rejection --------------------------------------------------------


def run_format_rejection(n, d, workdir):
    data, _ = _workload(n, d, 1)
    path = os.path.join(workdir, "reject.pds")
    write_pds(path, data)
    blob = bytearray(open(path, "rb").read())

    def rejected(mutate):
        bad = os.path.join(workdir, "bad.pds")
        b = bytearray(blob)
        mutate(b)
        open(bad, "wb").write(bytes(b))
        try:
            read_pds_header(bad)
            return False
        except DatasetFormatError:
            return True

    checks = {
        "bad_magic": rejected(lambda b: b.__setitem__(0, b[0] ^ 0xFF)),
        "wrong_version": rejected(lambda b: b.__setitem__(8, 0x63)),
        "truncated_payload": rejected(lambda b: b.__delitem__(
            slice(len(b) - 64, len(b)))),
        "geometry_mismatch": rejected(lambda b: b.__setitem__(16, b[16] ^ 1)),
    }
    checks["all_rejected"] = all(checks.values())
    return checks


# -- provisioning ------------------------------------------------------------


def run_provisioning(n, d, workdir, rounds=3):
    """Standing up a new serving location: file copy vs pickle+push.

    The pickle round-trip is a *lower bound* on array provisioning (a
    real push adds the network); the ``.pds`` copy is the whole cost
    of mmap provisioning — the serving process then attaches by path.
    """
    data, _ = _workload(n, d, 1)
    src = os.path.join(workdir, "prov.pds")
    write_pds(src, data)

    t_copy = []
    for i in range(rounds):
        dst = os.path.join(workdir, f"prov_copy{i}.pds")
        t0 = time.perf_counter()
        shutil.copyfile(src, dst)
        read_pds_header(dst)  # the attach-time validation cost
        t_copy.append(time.perf_counter() - t0)

    t_pickle = []
    for _ in range(rounds):
        t0 = time.perf_counter()
        blob = pickle.dumps(data, protocol=pickle.HIGHEST_PROTOCOL)
        pickle.loads(blob)
        t_pickle.append(time.perf_counter() - t0)

    return {
        "payload_bytes": int(data.nbytes),
        "t_file_copy_s": min(t_copy),
        "t_pickle_roundtrip_s": min(t_pickle),
    }


# -- IPC accounting ----------------------------------------------------------


def run_ipc_accounting(n, d, q, cap, workdir):
    """Process backend, pickle transport, measured payloads: array
    slices on the wire vs mmap slice descriptors."""
    data, queries = _workload(n, d, q)
    path = os.path.join(workdir, "ipc.pds")
    write_pds(path, data)
    out = {}
    for label, src in [("array", data), ("mmap", str(path))]:
        with ParallelConfig(
            n_workers=2, backend="process", transport="pickle",
            measure_ipc=True,
        ) as pc:
            res = APSimilaritySearch(
                src, k=8, board_capacity=cap, parallel=pc
            ).search(queries)
        out[label] = {
            "ipc_payload_bytes": res.ipc_payload_bytes,
            "identical": None,
        }
    ref = APSimilaritySearch(data, k=8, board_capacity=cap).search(queries)
    for label, src in [("array", data), ("mmap", str(path))]:
        with ParallelConfig(n_workers=2, backend="process") as pc:
            res = APSimilaritySearch(
                src, k=8, board_capacity=cap, parallel=pc
            ).search(queries)
        out[label]["identical"] = bool(
            np.array_equal(res.indices, ref.indices)
            and np.array_equal(res.distances, ref.distances)
        )
    arr_b = out["array"]["ipc_payload_bytes"]
    mm_b = out["mmap"]["ipc_payload_bytes"]
    out["dataset_bytes"] = int(data.nbytes)
    out["dataset_bytes_removed"] = (
        arr_b - mm_b if arr_b is not None and mm_b is not None else None
    )
    out["payload_cut"] = (
        arr_b / mm_b if arr_b and mm_b else None
    )
    return out


# -- peak-RSS probe ----------------------------------------------------------

_RSS_PROBE = r"""
import resource, sys, json
import numpy as np
from repro.core.engine import APSimilaritySearch

path, d, n_q, cap = sys.argv[1], int(sys.argv[2]), int(sys.argv[3]), int(sys.argv[4])
rng = np.random.default_rng(7)
queries = (rng.random((n_q, d)) < 0.5).astype(np.uint8)
# Baseline peak AFTER imports and query setup: everything from here on
# is the engine's footprint over the file-backed shard.
rss0 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
engine = APSimilaritySearch(
    path, k=8, board_capacity=cap, execution="functional", cache=True
)
r1 = engine.search(queries)   # cold: digests + compiles + executes
r2 = engine.search(queries)   # warm: cache hits only
rss1 = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
assert (r1.indices == r2.indices).all()
scale = 1024 if sys.platform.startswith("linux") else 1
print(json.dumps({"rss_delta_bytes": (rss1 - rss0) * scale}))
"""


def run_rss_probe(n, d, cap, workdir, n_q=4):
    """Peak-RSS growth of a fresh process serving a ``.pds`` shard.

    Runs in a subprocess so the measurement starts from a clean
    ``ru_maxrss`` (a peak can never be un-peaked in-process).  Only
    meaningful where ``ru_maxrss`` tracks resident pages the way the
    acceptance budget assumes — recorded as ``None`` off Linux and the
    regression gate skips it there.
    """
    data, _ = _workload(n, d, 1)
    path = os.path.join(workdir, "rss.pds")
    write_pds(path, data)
    payload = int(data.nbytes)
    del data
    if not sys.platform.startswith("linux"):
        return {
            "payload_bytes": payload,
            "rss_delta_bytes": None,
            "rss_ratio": None,
            "within_budget": None,
            "budget": 0.25,
        }
    proc = subprocess.run(
        [sys.executable, "-c", _RSS_PROBE, path, str(d), str(n_q), str(cap)],
        capture_output=True, text=True, env=os.environ.copy(),
    )
    if proc.returncode != 0:
        raise RuntimeError(f"rss probe failed:\n{proc.stderr}")
    delta = json.loads(proc.stdout)["rss_delta_bytes"]
    ratio = delta / payload
    return {
        "payload_bytes": payload,
        "rss_delta_bytes": int(delta),
        "rss_ratio": ratio,
        "within_budget": bool(ratio < 0.25),
        "budget": 0.25,
    }


# -- throughput --------------------------------------------------------------


def run_throughput(n, d, q, cap, workdir, rounds=3):
    """Warm serial query throughput per store (context, not gated)."""
    data, queries = _workload(n, d, q)
    path = os.path.join(workdir, "tp.pds")
    write_pds(path, data)
    rows = []
    for label, src in [("array", data), ("mmap", str(path))]:
        engine = APSimilaritySearch(
            src, k=8, board_capacity=cap, execution="functional", cache=True
        )
        engine.search(queries)  # warm the compile cache
        times = []
        for _ in range(rounds):
            t0 = time.perf_counter()
            engine.search(queries)
            times.append(time.perf_counter() - t0)
        best = min(times)
        rows.append({
            "store": label,
            "t_warm_s": best,
            "queries_per_s": q / best,
        })
    return rows


def run_all(quick=False):
    if quick:
        parity_n, parity_d = 1 << 12, 32
        big_n, big_d = 1 << 18, 128     # 32 MiB payload for the probes
        cap, q = 1 << 10, 16
    else:
        parity_n, parity_d = 1 << 14, 64
        big_n, big_d = 1 << 19, 128     # 64 MiB payload
        cap, q = 1 << 10, 32
    with tempfile.TemporaryDirectory(prefix="bench-dataset-") as workdir:
        parity = run_parity(parity_n, parity_d, 8, 256, workdir)
        rejection = run_format_rejection(256, 32, workdir)
        provisioning = run_provisioning(big_n, big_d, workdir)
        ipc = run_ipc_accounting(parity_n, parity_d, 8, 256, workdir)
        rss = run_rss_probe(big_n, big_d, cap, workdir)
        throughput = run_throughput(parity_n, parity_d, q, 256, workdir)
    return {
        "quick": quick,
        "parity": parity,
        "format_rejection": rejection,
        "provisioning": provisioning,
        "ipc": ipc,
        "rss": rss,
        "throughput": throughput,
    }


# -- pytest harness ----------------------------------------------------------


def test_dataset_stores_smoke(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    report(
        "Dataset stores (quick sizes)",
        ["Check", "Value"],
        [
            ["parity stores x workloads",
             f"{sum(r['identical'] for r in results['parity'])}"
             f"/{len(results['parity'])} identical"],
            ["pds rejects corruption",
             results["format_rejection"]["all_rejected"]],
            ["ipc payload cut (mmap)",
             f"{results['ipc']['payload_cut']:.1f}x"],
            ["rss delta / payload",
             (f"{results['rss']['rss_ratio']:.3f}"
              if results["rss"]["rss_ratio"] is not None else "skipped")],
        ],
    )
    assert all(r["identical"] for r in results["parity"])
    assert results["format_rejection"]["all_rejected"]
    assert results["ipc"]["array"]["identical"]
    assert results["ipc"]["mmap"]["identical"]
    assert results["ipc"]["payload_cut"] > 2.0
    if results["rss"]["within_budget"] is not None:
        assert results["rss"]["within_budget"]


# -- standalone entry point --------------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_dataset.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)

    print("== store x workload parity (serial) ==")
    for r in results["parity"]:
        print(f"{r['workload']:>8} / {r['store']:<6} identical={r['identical']}")
    print("== .pds structural rejection ==")
    for name, ok in results["format_rejection"].items():
        print(f"{name:>20}: {'rejected' if ok else 'ACCEPTED (BUG)'}")

    prov = results["provisioning"]
    mib = prov["payload_bytes"] / (1 << 20)
    print(f"== provisioning a {mib:.0f} MiB shard ==")
    print(f"file copy + validate : {prov['t_file_copy_s'] * 1e3:8.2f} ms")
    print(f"pickle round-trip    : {prov['t_pickle_roundtrip_s'] * 1e3:8.2f} ms")

    ipc = results["ipc"]
    print("== process-worker IPC payload (pickle transport) ==")
    print(f"array slices : {ipc['array']['ipc_payload_bytes']:>12} bytes")
    print(f"mmap refs    : {ipc['mmap']['ipc_payload_bytes']:>12} bytes "
          f"({ipc['payload_cut']:.1f}x cut, dataset "
          f"{ipc['dataset_bytes']} bytes off the wire)")

    rss = results["rss"]
    if rss["rss_ratio"] is not None:
        print(f"== peak-RSS growth serving a "
              f"{rss['payload_bytes'] / (1 << 20):.0f} MiB .pds shard ==")
        print(f"delta {rss['rss_delta_bytes'] / (1 << 20):.1f} MiB = "
              f"{rss['rss_ratio']:.3f} of payload "
              f"(budget {rss['budget']}) -> "
              f"{'OK' if rss['within_budget'] else 'OVER BUDGET'}")
    else:
        print("== peak-RSS probe skipped (non-Linux ru_maxrss semantics) ==")

    print("== warm serial throughput ==")
    for r in results["throughput"]:
        print(f"{r['store']:>6}: {r['queries_per_s']:10.1f} queries/s")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    if not all(r["identical"] for r in results["parity"]):
        raise SystemExit("FAIL: store parity broken")
    if not results["format_rejection"]["all_rejected"]:
        raise SystemExit("FAIL: corrupt .pds accepted")
    if not (ipc["array"]["identical"] and ipc["mmap"]["identical"]):
        raise SystemExit("FAIL: parallel results diverge from serial")
    if ipc["payload_cut"] is None or ipc["payload_cut"] < 2.0:
        raise SystemExit(
            f"FAIL: mmap IPC payload only {ipc['payload_cut']}x smaller"
        )
    if rss["within_budget"] is False:
        raise SystemExit(
            f"FAIL: RSS growth {rss['rss_ratio']:.3f} of payload exceeds "
            f"the {rss['budget']} out-of-core budget"
        )
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
