"""Ablation — Jaccard similarity on the AP (Section II-C).

Times the two Jaccard formulations and quantifies the threshold
filter's report-bandwidth reduction, the quantity that makes the
AP-as-pre-filter pattern attractive.
"""

import numpy as np
import pytest

from repro.core.jaccard import (
    JaccardAPSearch,
    JaccardThresholdFilter,
    jaccard_similarity_matrix,
)


@pytest.fixture(scope="module")
def corpus():
    rng = np.random.default_rng(91)
    data = (rng.random((2000, 64)) < 0.3).astype(np.uint8)
    data |= np.eye(2000, 64, dtype=np.uint8)  # no empty sets
    queries = data[rng.integers(0, 2000, size=64)].copy()
    flips = rng.random(queries.shape) < 0.05
    queries = np.where(flips, 1 - queries, queries).astype(np.uint8)
    return data, queries


def test_jaccard_topk(benchmark, report, corpus):
    data, queries = corpus
    search = JaccardAPSearch(data, k=5)
    res = benchmark(search.search, queries)
    sims = jaccard_similarity_matrix(queries, data)
    exact_top1 = sims.argmax(axis=1)
    agree = int((res.indices[:, 0] == exact_top1).sum())
    report(
        "Jaccard top-k via intersection temporal sort (n=2000, d=64)",
        ["Queries", "k", "Top-1 agrees with exact Jaccard"],
        [[64, 5, f"{agree}/64"]],
    )
    assert agree >= 62  # ties may pick a different equal-similarity vector


@pytest.mark.parametrize("tau", [8, 12, 16])
def test_jaccard_filter_reduction(benchmark, report, corpus, tau):
    data, queries = corpus
    filt = JaccardThresholdFilter(data, tau=tau)
    cands = benchmark(filt.candidates, queries)
    mean_c = float(np.mean([c.size for c in cands]))
    reduction = filt.reduction_factor(queries)
    # recall of the true best match within the candidate set
    sims = jaccard_similarity_matrix(queries, data)
    best = sims.argmax(axis=1)
    hit = sum(best[i] in set(cands[i].tolist()) for i in range(len(queries)))
    report(
        f"Jaccard threshold filter, tau={tau} (n=2000, d=64)",
        ["tau", "Candidates/query", "Report reduction", "Best-match recall"],
        [[tau, f"{mean_c:.1f}", f"{reduction:.1f}x", f"{hit}/64"]],
    )
    assert reduction > 1.0
    if tau <= 12:
        assert hit >= 60
