"""E14 — Section VI-C report-bandwidth budget (Fig. 9 context).

The base design makes every encoded vector report every query:
``32 (n + d)`` bits per query every ``2d`` cycles.  The paper quotes
36.2 / 18.1 / 9.0 Gbps for the three workloads against the 63 Gbps PCIe
Gen 3 x8 budget.  (Our formula reproduces WordEmbed exactly; the
paper's SIFT/TagSpace rows halve by construction — they drop the ``+d``
offset term — so both are printed.)
"""

import pytest

from repro.core.multiplexing import report_bandwidth_gbps
from repro.workloads.params import WORKLOADS

PAPER_GBPS = {"kNN-WordEmbed": 36.2, "kNN-SIFT": 18.1, "kNN-TagSpace": 9.0}
PCIE_BUDGET = 63.0


def test_report_bandwidth(benchmark, report):
    def compute():
        return {
            w.name: report_bandwidth_gbps(w.board_capacity, w.d)
            for w in WORKLOADS.values()
        }

    got = benchmark(compute)
    rows = []
    for name, w in WORKLOADS.items():
        asymptotic = report_bandwidth_gbps(w.board_capacity, w.d) * (
            w.board_capacity / (w.board_capacity + w.d)
        )
        rows.append(
            [name, f"{got[name]:.1f}", f"{asymptotic:.1f}",
             f"{PAPER_GBPS[name]:.1f}",
             f"{100 * got[name] / PCIE_BUDGET:.0f}%"]
        )
    report(
        "Section VI-C: sustained report bandwidth vs 63 Gbps PCIe",
        ["Workload", "Model Gbps", "Model (n-only)", "Paper Gbps",
         "% of PCIe budget"],
        rows,
    )
    assert got["kNN-WordEmbed"] == pytest.approx(36.2, abs=0.2)
    # every workload fits the PCIe budget unmultiplexed...
    assert all(v < PCIE_BUDGET for v in got.values())
    # ...and the ordering follows 1/d as the paper's rows do.
    assert got["kNN-WordEmbed"] > got["kNN-SIFT"] > got["kNN-TagSpace"]
