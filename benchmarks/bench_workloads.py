"""Workload stack: parallel speedup and wire traffic per registered workload.

PR 6 extracted the kNN-specific compile→partition→execute→merge
pipeline into :mod:`repro.core.workload`: a registry of
:class:`~repro.core.workload.Workload` implementations that all ride
the same host stack (thread/process pools, shm transport, batching,
remote shards).  This benchmark proves the "for free" claim is not
just a parity statement but a perf one, per built-in workload:

* **parallel sweep** — for each registered workload (kNN, Jaccard
  top-k, Hamming range), time a warm serial
  :class:`~repro.core.workload.WorkloadSearch` against a warm
  thread-parallel one over identical partitions and record the
  speedup plus bit-identity of every wire field;
* **remote wire** — fan each workload out across a 2-shard loopback
  rack through :class:`~repro.host.rpc.RemoteWorkloadSearch` and
  record the deterministic per-batch wire bytes (request out, reply
  back) and bit-identity against the local engine.

Results land in ``BENCH_workloads.json``; CI runs ``--quick`` and
gates bit-identity, the minimum parallel speedup (wide band: timing),
and the wire byte counts (tight band: deterministic) through
``benchmarks/check_regression.py``.
"""

import json
import os
import time


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


WORKLOADS = [
    ("knn", {"k": 10}),
    ("jaccard", {"k": 10}),
    ("range", {"radius": 24}),
]


def _dataset(n, d, n_queries, seed=2017):
    import numpy as np

    rng = np.random.default_rng(seed)
    data = (rng.random((n, d)) < 0.4).astype(np.uint8)
    queries = (rng.random((n_queries, d)) < 0.4).astype(np.uint8)
    return data, queries


def _time(fn):
    t0 = time.perf_counter()
    fn()
    return time.perf_counter() - t0


def _values_identical(workload, a, b) -> bool:
    import numpy as np

    return all(
        np.asarray(getattr(a, f)).shape == np.asarray(getattr(b, f)).shape
        and (np.asarray(getattr(a, f)) == np.asarray(getattr(b, f))).all()
        for f in workload.wire_fields
    )


def run_parallel_sweep(n, d, q, cap, n_workers, warm_rounds=3):
    """Serial vs thread-parallel WorkloadSearch, per registered workload."""
    from repro.core.workload import WorkloadSearch, get_workload
    from repro.host.parallel import ParallelConfig

    data, queries = _dataset(n, d, q)
    rows = []
    for name, params in WORKLOADS:
        workload = get_workload(name)
        serial = WorkloadSearch(
            data, name, params, board_capacity=cap, cache=True
        )
        par = WorkloadSearch(
            data, name, params, board_capacity=cap, cache=True,
            parallel=ParallelConfig(
                n_workers=n_workers, backend="thread", persistent=True
            ),
        )
        try:
            ref = serial.search(queries)  # also warms the shared-shape cache
            t_serial = min(_time(lambda: serial.search(queries))
                           for _ in range(warm_rounds))
            got = par.search(queries)
            t_parallel = min(_time(lambda: par.search(queries))
                             for _ in range(warm_rounds))
            rows.append({
                "workload": name, "params": params,
                "n": n, "d": d, "q": q, "cap": cap,
                "n_partitions": ref.n_partitions,
                "n_workers": got.n_workers,
                "t_serial_s": t_serial,
                "t_parallel_s": t_parallel,
                "speedup": t_serial / max(t_parallel, 1e-12),
                "identical": _values_identical(workload, got.value, ref.value),
            })
        finally:
            par.parallel.close()  # release the persistent thread pool
    return rows


def run_remote_wire(n, d, q, cap, n_shards=2):
    """Per-batch wire bytes and parity over a loopback rack, per workload."""
    from repro.core.workload import WorkloadSearch, get_workload
    from repro.host.rpc import RemoteWorkloadSearch, serve_shard

    data, queries = _dataset(n, d, q, seed=11)
    rows = []
    for name, params in WORKLOADS:
        workload = get_workload(name)
        ref = WorkloadSearch(
            data, name, params, board_capacity=cap
        ).search(queries)
        servers = [
            serve_shard(data, i, n_shards, board_capacity=cap,
                        execution="functional").start()
            for i in range(n_shards)
        ]
        addresses = [f"{h}:{p}" for h, p in (s.address for s in servers)]
        try:
            with RemoteWorkloadSearch(addresses, name, params) as remote:
                remote.search(queries)  # warm: handshake + shard compiles
                sent0, recv0 = remote.pool.wire_bytes
                last = remote.search(queries)
                sent1, recv1 = remote.pool.wire_bytes
                rows.append({
                    "workload": name, "params": params,
                    "n": n, "d": d, "q": q, "shards": n_shards,
                    "wire_bytes_out_per_batch": sent1 - sent0,
                    "wire_bytes_back_per_batch": recv1 - recv0,
                    "partial": last.partial,
                    "identical": _values_identical(
                        workload, last.value, ref.value
                    ),
                })
        finally:
            for s in servers:
                s.close()
    return rows


def run_all(quick=False):
    cores = _available_cores()
    if quick:
        sweep = run_parallel_sweep(
            n=1 << 12, d=64, q=24, cap=256,
            n_workers=4, warm_rounds=2,
        )
        remote = run_remote_wire(n=1 << 11, d=64, q=16, cap=256)
    else:
        sweep = run_parallel_sweep(
            n=1 << 15, d=128, q=96, cap=1 << 11, n_workers=8
        )
        remote = run_remote_wire(n=1 << 13, d=128, q=64, cap=1 << 11)
    return {
        "sweep": sweep,
        "remote": remote,
        "quick": quick,
        "cores": cores,
    }


# -- pytest harness -------------------------------------------------------


def test_workloads_smoke(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    report(
        "Workload stack (quick sizes): parallel speedup + wire bytes",
        ["Workload", "Speedup (thread)", "Wire out/back (B)",
         "Bit-identical"],
        [
            [s["workload"], f"{s['speedup']:.2f}x",
             f"{r['wire_bytes_out_per_batch']}/"
             f"{r['wire_bytes_back_per_batch']}",
             s["identical"] and r["identical"]]
            for s, r in zip(results["sweep"], results["remote"])
        ],
    )
    assert all(s["identical"] for s in results["sweep"])
    assert all(r["identical"] for r in results["remote"])
    assert not any(r["partial"] for r in results["remote"])


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_workloads.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)

    print("== Workload stack: serial vs thread-parallel (warm) ==")
    print(f"{'workload':>9} {'parts':>6} {'workers':>8} {'t_serial_s':>11} "
          f"{'t_par_s':>9} {'speedup':>8} {'identical':>10}")
    for s in results["sweep"]:
        print(f"{s['workload']:>9} {s['n_partitions']:>6} "
              f"{s['n_workers']:>8} {s['t_serial_s']:>11.4f} "
              f"{s['t_parallel_s']:>9.4f} {s['speedup']:>7.2f}x "
              f"{s['identical']!s:>10}")
    print("== Remote rack: deterministic wire bytes per batch ==")
    for r in results["remote"]:
        print(f"{r['workload']:>9} out={r['wire_bytes_out_per_batch']:>8} B  "
              f"back={r['wire_bytes_back_per_batch']:>8} B  "
              f"identical={r['identical']} partial={r['partial']}")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    if not all(s["identical"] for s in results["sweep"]):
        raise SystemExit("FAIL: parallel workload diverges from serial")
    if not all(r["identical"] for r in results["remote"]):
        raise SystemExit("FAIL: remote workload diverges from local engine")
    if any(r["partial"] for r in results["remote"]):
        raise SystemExit("FAIL: loopback shards reported partial results")
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
