"""Ablation — how much of the paper's AP performance is pipelining?

The paper's AP timing rests on two concurrency assumptions
(Section IV-B): non-blocking API calls (host decodes while the device
works) and overlap of one query's sort phase with the next query's
Hamming phase (steady-state cost ``d`` cycles per query).  This
ablation schedules the full Table IV WordEmbed run under three
policies and attributes the gap, then shows the Gen 2 host-decode
bottleneck that motivates Section VI-C's activation reduction.
"""

import pytest

from repro.ap.device import GEN1, GEN2
from repro.host.scheduler import POLICIES, schedule_knn_run
from repro.workloads.params import LARGE_N, N_QUERIES, WORKLOADS


def schedule_all(device):
    w = WORKLOADS["kNN-WordEmbed"]
    parts = LARGE_N // w.board_capacity
    block = 2 * w.d + 4
    out = {}
    for policy in POLICIES:
        out[policy] = schedule_knn_run(
            parts, N_QUERIES, w.d, block,
            reports_per_partition=w.board_capacity * N_QUERIES,
            device=device, policy=policy,
        )
    return out


def test_pipelining_gen1(benchmark, report):
    res = benchmark.pedantic(schedule_all, args=(GEN1,), rounds=1, iterations=1)
    rows = [
        [p, f"{r.makespan_s:.2f}",
         f"{r.makespan_s / res['query-overlap'].makespan_s:.2f}x",
         f"{r.device_utilization:.2f}"]
        for p, r in res.items()
    ]
    rows.append(["paper Table IV row", "48.10", "1.00x", ""])
    report(
        "Pipelining ablation, Gen 1 kNN-WordEmbed (n=2^20, q=4096)",
        ["Policy", "Makespan (s)", "vs paper model", "Device util"],
        rows,
    )
    assert res["query-overlap"].makespan_s == pytest.approx(48.10, rel=0.01)
    # Gen 1 is reconfiguration-bound: policies differ by < 10 %
    assert res["blocking"].makespan_s / res["query-overlap"].makespan_s < 1.10


def test_pipelining_gen2_host_bottleneck(benchmark, report):
    res = benchmark.pedantic(schedule_all, args=(GEN2,), rounds=1, iterations=1)
    qo = res["query-overlap"]
    w = WORKLOADS["kNN-WordEmbed"]
    parts = LARGE_N // w.board_capacity
    reduced = schedule_knn_run(
        parts, N_QUERIES, w.d, 2 * w.d + 4,
        reports_per_partition=w.board_capacity * N_QUERIES // 8,
        device=GEN2, policy="query-overlap",
    )
    report(
        "Gen 2: full report stream vs 8x activation reduction (Sec. VI-C)",
        ["Config", "Makespan (s)", "Device busy (s)", "Host busy (s)",
         "Critical path"],
        [["full reports", f"{qo.makespan_s:.2f}",
          f"{qo.timeline.device_busy_s:.2f}",
          f"{qo.timeline.host_busy_s:.2f}", "host"],
         ["k'/p = 1/8 reduction", f"{reduced.makespan_s:.2f}",
          f"{reduced.timeline.device_busy_s:.2f}",
          f"{reduced.timeline.host_busy_s:.2f}", "device"]],
    )
    assert qo.timeline.host_busy_s > qo.timeline.device_busy_s
    assert reduced.timeline.host_busy_s < reduced.timeline.device_busy_s
    assert reduced.makespan_s < qo.makespan_s
