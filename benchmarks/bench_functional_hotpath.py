"""Top-k-aware functional hot path: old vs new kernel + decode timings.

The functional back-end is the path the engine auto-selects at the
paper's large-``n`` scale, so its constant factors ARE the product's
latency.  This benchmark freezes the pre-PR hot path — full
``(q, n, w)`` broadcast with table popcounts, a stable argsort of the
*entire* report set per partition, a per-report Python
``decode_report_offset`` loop, and a per-query ``merge_topk`` loop —
and races it against the shipped path (``np.bitwise_count`` tiled
kernels, ``query_topk`` argpartition selection, vectorized decode,
one batched cross-partition merge) at several ``n``:

* kernel rows: all-pairs Hamming cdist, old vs new, peak-bounded tiles;
* search rows: end-to-end ``APSimilaritySearch`` functional search,
  old engine loop vs new, with bit-identical result checks across
  old/new, tiled/untiled, and thread/process/sequential execution.

Timings land in ``BENCH_functional.json`` so CI records the perf
trajectory run over run.  Runs under the pytest-benchmark harness like
the other benchmarks, or standalone:
``python benchmarks/bench_functional_hotpath.py [--quick] [--out PATH]``.
"""

import json
import time

import numpy as np

# -- frozen pre-PR reference implementations ------------------------------
#
# Copied, not imported: these are the exact algorithms the engine ran
# before the top-k overhaul, kept verbatim so the speedup baseline
# cannot silently improve as the library evolves.

_POPCOUNT16 = np.array([bin(i).count("1") for i in range(1 << 16)], dtype=np.uint8)


def _old_popcount_u64(words):
    lo = (words & np.uint64(0xFFFF)).astype(np.intp)
    m1 = ((words >> np.uint64(16)) & np.uint64(0xFFFF)).astype(np.intp)
    m2 = ((words >> np.uint64(32)) & np.uint64(0xFFFF)).astype(np.intp)
    hi = (words >> np.uint64(48)).astype(np.intp)
    return (
        _POPCOUNT16[lo].astype(np.int64)
        + _POPCOUNT16[m1]
        + _POPCOUNT16[m2]
        + _POPCOUNT16[hi]
    )


def _old_cdist(queries_packed, dataset_packed):
    """Pre-PR kernel: one full (q, n, w) int64 intermediate."""
    xored = queries_packed[:, None, :] ^ dataset_packed[None, :, :]
    return _old_popcount_u64(xored).sum(axis=-1)


def _old_functional_search(data, queries, k, cap):
    """Pre-PR engine loop: full report stream, stable argsort over all
    n reports per query, per-report Python decode, per-query merge."""
    from repro.core.functional import FunctionalKnnBoard
    from repro.core.macros import collector_tree_depth
    from repro.core.stream import StreamLayout, decode_report_offset
    from repro.util.topk import merge_topk

    d = data.shape[1]
    layout = StreamLayout(d, collector_tree_depth(d, 16))
    n_q = queries.shape[0]
    k_eff = min(k, data.shape[0])
    partials = [[] for _ in range(n_q)]
    for start in range(0, data.shape[0], cap):
        end = min(start + cap, data.shape[0])
        board = FunctionalKnnBoard(data[start:end], layout)
        q_idx, codes, cycles = board.query_reports(queries)
        codes = codes + start
        order = np.lexsort((codes, cycles, q_idx))
        q_sorted = q_idx[order]
        codes_sorted = codes[order]
        cycles_sorted = cycles[order]
        starts = np.searchsorted(q_sorted, np.arange(n_q), side="left")
        ends = np.searchsorted(q_sorted, np.arange(n_q), side="right")
        for qi in range(n_q):
            lo, hi = starts[qi], min(ends[qi], starts[qi] + k_eff)
            if hi <= lo:
                continue
            dists = np.array(
                [decode_report_offset(int(c), layout)[2]
                 for c in cycles_sorted[lo:hi]],
                dtype=np.int64,
            )
            partials[qi].append((codes_sorted[lo:hi], dists))
    indices = np.empty((n_q, k_eff), dtype=np.int64)
    distances = np.empty((n_q, k_eff), dtype=np.int64)
    for qi in range(n_q):
        idx, dist = merge_topk(partials[qi], k_eff)
        indices[qi] = idx
        distances[qi] = dist
    return indices, distances


# -- workload -------------------------------------------------------------


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _time(fn):
    t0 = time.perf_counter()
    out = fn()
    return time.perf_counter() - t0, out


# -- benchmark passes -----------------------------------------------------


def run_kernel_bench(ns, d=64, q=64):
    """Old broadcast kernel vs new tiled kernel at several n."""
    from repro.util.bitops import hamming_cdist_packed, pack_bits

    rows = []
    for n in ns:
        data, queries = _workload(n, d, q)
        dp, qp = pack_bits(data), pack_bits(queries)
        t_old, ref = _time(lambda: _old_cdist(qp, dp))
        t_new, got = _time(lambda: hamming_cdist_packed(qp, dp))
        t_tiled, got_tiled = _time(lambda: hamming_cdist_packed(qp, dp, tile_q=8))
        identical = bool((ref == got).all() and (ref == got_tiled).all())
        rows.append({
            "n": n, "d": d, "q": q,
            "t_old_s": t_old, "t_new_s": t_new, "t_new_tiled_s": t_tiled,
            "speedup": t_old / max(t_new, 1e-12),
            "identical": identical,
        })
    return rows


def run_search_bench(ns, d=64, q=64, k=10, cap=1024):
    """End-to-end functional search, pre-PR loop vs shipped engine."""
    from repro import APSimilaritySearch

    rows = []
    for n in ns:
        data, queries = _workload(n, d, q)
        t_old, (old_idx, old_dist) = _time(
            lambda: _old_functional_search(data, queries, k, cap)
        )
        eng = APSimilaritySearch(
            data, k=k, board_capacity=cap, execution="functional"
        )
        t_new, res = _time(lambda: eng.search(queries))
        identical = bool(
            (res.indices == old_idx).all() and (res.distances == old_dist).all()
        )
        rows.append({
            "n": n, "d": d, "q": q, "k": k, "cap": cap,
            "t_old_s": t_old, "t_new_s": t_new,
            "speedup": t_old / max(t_new, 1e-12),
            "identical": identical,
        })
    return rows


def run_backend_parity(n=4096, d=64, q=32, k=10, cap=512):
    """thread ≡ process ≡ sequential on the same workload."""
    from repro import APSimilaritySearch
    from repro.host.parallel import ParallelConfig

    data, queries = _workload(n, d, q)
    seq = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional"
    ).search(queries)
    out = {"n": n, "q": q, "k": k, "backends": {}}
    for backend in ("thread", "process"):
        t, res = _time(
            lambda: APSimilaritySearch(
                data, k=k, board_capacity=cap, execution="functional",
                parallel=ParallelConfig(n_workers=4, backend=backend),
            ).search(queries)
        )
        out["backends"][backend] = {
            "t_s": t,
            "n_workers": res.n_workers,
            "identical": bool(
                (res.indices == seq.indices).all()
                and (res.distances == seq.distances).all()
                and res.counters == seq.counters
            ),
        }
    return out


def run_all(quick=False):
    if quick:
        kernel_ns = [1 << 10, 1 << 12]
        search_ns = [1 << 10, 1 << 12]
        q, k = 16, 10
        parity = run_backend_parity(n=1024, q=8)
    else:
        kernel_ns = [1 << 14, 1 << 17]
        search_ns = [1 << 14, 1 << 17]  # acceptance point: n = 2**17
        q, k = 64, 10
        parity = run_backend_parity()
    return {
        "kernel": run_kernel_bench(kernel_ns, q=q),
        "search": run_search_bench(search_ns, q=q, k=k),
        "parity": parity,
        "quick": quick,
    }


# -- pytest harness -------------------------------------------------------


def test_functional_hotpath_speedup(benchmark, report):
    results = benchmark.pedantic(lambda: run_all(quick=True), rounds=1, iterations=1)
    report(
        "Functional hot path: pre-PR loop vs top-k path (quick sizes)",
        ["n", "t_old (s)", "t_new (s)", "Speedup", "Bit-identical"],
        [
            [r["n"], f"{r['t_old_s']:.3f}", f"{r['t_new_s']:.3f}",
             f"{r['speedup']:.1f}x", r["identical"]]
            for r in results["search"]
        ],
    )
    assert all(r["identical"] for r in results["search"])
    assert all(r["identical"] for r in results["kernel"])
    assert all(b["identical"] for b in results["parity"]["backends"].values())


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_functional.json",
                        help="write timing rows to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)

    print("== kernel: all-pairs Hamming cdist (old table+broadcast vs new) ==")
    print(f"{'n':>9} {'t_old_s':>9} {'t_new_s':>9} {'speedup':>8} {'identical':>10}")
    for r in results["kernel"]:
        print(f"{r['n']:>9} {r['t_old_s']:>9.3f} {r['t_new_s']:>9.3f} "
              f"{r['speedup']:>7.1f}x {r['identical']!s:>10}")

    print("== search: end-to-end functional kNN (pre-PR loop vs top-k path) ==")
    print(f"{'n':>9} {'t_old_s':>9} {'t_new_s':>9} {'speedup':>8} {'identical':>10}")
    for r in results["search"]:
        print(f"{r['n']:>9} {r['t_old_s']:>9.3f} {r['t_new_s']:>9.3f} "
              f"{r['speedup']:>7.1f}x {r['identical']!s:>10}")

    par = results["parity"]
    print("== backend parity (vs sequential) ==")
    for backend, row in par["backends"].items():
        print(f"{backend:>9}: {row['t_s']:.3f}s workers={row['n_workers']} "
              f"identical={row['identical']}")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# timings written to {args.out}")

    ok = (
        all(r["identical"] for r in results["kernel"])
        and all(r["identical"] for r in results["search"])
        and all(b["identical"] for b in par["backends"].values())
    )
    if not ok:
        raise SystemExit("FAIL: hot-path results diverge from the reference")
    if not args.quick:
        worst = min(r["speedup"] for r in results["search"])
        if worst < 3.0:
            raise SystemExit(
                f"FAIL: functional search speedup {worst:.2f}x < 3x acceptance"
            )
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
