"""Ablation — the PCRE programming path (Section II-B).

The AP's primary programming model is regex compilation; this benchmark
times (a) compiling a pattern panel onto one board and (b) streaming a
text through it, reporting simulator throughput (symbols/second) as the
panel grows — the scaling knob for this reproduction's pattern-mining
substrate.
"""

import numpy as np
import pytest

from repro.automata.network import AutomataNetwork
from repro.automata.regex import compile_regex
from repro.automata.simulator import CompiledSimulator

PATTERNS = [
    "TATA[AT]A", "GAATTC", "GG(A|T)CC", "CG{2,4}A", "ATG.{3,6}TAA",
    "A{4,8}", "(GC){3,5}", "T(A|G)GT[AC]A", "CAAT..GG", "GC[AT]GC",
]


@pytest.mark.parametrize("n_patterns", [2, 5, 10])
def test_regex_panel_scan(benchmark, report, n_patterns):
    rng = np.random.default_rng(101)
    text = "".join(rng.choice(list("ACGT"), size=2000)).encode()
    board = AutomataNetwork(f"panel{n_patterns}")
    for code, pat in enumerate(PATTERNS[:n_patterns], start=1):
        compile_regex(pat, report_code=code, prefix=f"m{code}_", network=board)
    sim = CompiledSimulator(board)

    res = benchmark(sim.run, text)

    report(
        f"Regex panel scan: {n_patterns} patterns, 2 kB stream",
        ["Patterns", "STEs", "Reports", "One pass answers all patterns"],
        [[n_patterns, sim.n_stes, len(res.reports), True]],
    )
    assert res.n_cycles == len(text)


def test_regex_compile_throughput(benchmark):
    def compile_panel():
        board = AutomataNetwork("panel")
        for code, pat in enumerate(PATTERNS, start=1):
            compile_regex(pat, report_code=code, prefix=f"m{code}_", network=board)
        return board

    board = benchmark(compile_panel)
    assert len(board.connected_components()) >= len(PATTERNS)
