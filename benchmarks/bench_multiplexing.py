"""E11 — Fig. 6 + Section VI-B: symbol-stream multiplexing.

Times a 7-way multiplexed simulation (7 queries per symbol block),
verifies the throughput claim functionally, and reproduces the paper's
Gen 1 infeasibility arithmetic (7x board footprint on a 41-91 % full
board; >200 Gbps of report traffic against a 63 Gbps PCIe budget).
"""

import numpy as np
import pytest

from repro.automata.simulator import CompiledSimulator
from repro.core.multiplexing import (
    build_multiplexed_network,
    encode_multiplexed_batch,
    multiplexing_feasibility,
)
from repro.core.stream import decode_report_offset
from repro.util.bitops import hamming_cdist_packed, pack_bits

PAPER_UTIL = {"kNN-WordEmbed": (0.417, 1024, 64), "kNN-SIFT": (0.909, 1024, 128),
              "kNN-TagSpace": (0.786, 512, 256)}


def test_muxed_simulation_7_queries(benchmark, report):
    rng = np.random.default_rng(31)
    n, d, s = 8, 12, 7
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (s, d), dtype=np.uint8)
    net, lay = build_multiplexed_network(data, s)
    sim = CompiledSimulator(net)
    block = encode_multiplexed_batch(queries, lay)

    res = benchmark(sim.run, block)

    dist = hamming_cdist_packed(pack_bits(queries), pack_bits(data))
    correct = 0
    for r in res.reports:
        si, vi = divmod(r.code, n)
        correct += decode_report_offset(r.cycle, lay)[2] == dist[si, vi]
    report(
        "7-way multiplexed block: 7 queries answered in one stream pass",
        ["Queries/block", "Symbols streamed", "Reports", "Correct distances"],
        [[s, lay.block_length, len(res.reports), f"{correct}/{s * n}"]],
    )
    assert correct == s * n
    assert len(res.reports) == s * n


@pytest.mark.parametrize("wname", sorted(PAPER_UTIL))
def test_gen1_feasibility(benchmark, report, wname):
    util, n, d = PAPER_UTIL[wname]
    f = benchmark(multiplexing_feasibility, util, n, d, 7)
    report(
        f"Section VI-B feasibility: 7x multiplexing of {wname} on Gen 1",
        ["Quantity", "Value", "Budget", "Feasible"],
        [["board utilization", f"{f.utilization:.0%}", "100%", f.fits_board],
         ["report bandwidth", f"{f.report_bandwidth_gbps:.1f} Gbps",
          f"{f.pcie_budget_gbps:.0f} Gbps (PCIe Gen3 x8)", f.fits_pcie]],
    )
    assert not f.feasible
    if wname == "kNN-WordEmbed":
        assert f.report_bandwidth_gbps > 200  # the paper's ">200 Gbps"
