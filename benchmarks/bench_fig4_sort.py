"""E2 — Fig. 4: the temporally encoded sort.

Beyond the figure's two-vector race (A = {1,0,1,1} before
B = {0,0,0,0}), the benchmark streams one query against a full board of
vector macros and checks the *entire* report order equals the distance
sort — the paper's O(d) replacement for the O(n log n) host sort — and
times the cycle-accurate simulation of that sort.
"""

import numpy as np
from repro.automata.simulator import CompiledSimulator
from repro.core.macros import build_knn_network
from repro.core.stream import StreamLayout, encode_query

N, D = 64, 16


def build():
    rng = np.random.default_rng(41)
    data = rng.integers(0, 2, (N, D), dtype=np.uint8)
    query = rng.integers(0, 2, D, dtype=np.uint8)
    net, handles = build_knn_network(data)
    layout = StreamLayout(D, handles[0].collector_depth)
    sim = CompiledSimulator(net)
    return data, query, sim, layout


_STATE = build()


def test_fig4_two_vector_race(benchmark, report):
    def race():
        net, handles = build_knn_network(
            np.array([[1, 0, 1, 1], [0, 0, 0, 0]], dtype=np.uint8)
        )
        layout = StreamLayout(4, handles[0].collector_depth)
        res = CompiledSimulator(net).run(
            encode_query(np.array([1, 0, 0, 1], dtype=np.uint8), layout)
        )
        return sorted((r.cycle, r.code) for r in res.reports)

    order = benchmark(race)
    report(
        "Fig. 4: two-vector temporal sort (query C = {1,0,0,1})",
        ["Vector", "Inverted Hamming", "Report cycle (0-based)"],
        [["A = {1,0,1,1}", 3, order[0][0]], ["B = {0,0,0,0}", 2, order[1][0]]],
    )
    assert [c for _, c in order] == [0, 1]


def test_fig4_full_board_sort(benchmark, report):
    data, query, sim, layout = _STATE

    def run():
        return sim.run(encode_query(query, layout))

    res = benchmark(run)
    order = [code for _, code in sorted((r.cycle, r.code) for r in res.reports)]
    dist = np.abs(data.astype(int) - query.astype(int)).sum(axis=1)
    expected = sorted(range(N), key=lambda i: (dist[i], i))
    report(
        f"Fig. 4 generalized: {N}-vector board, one query",
        ["Property", "Value"],
        [["reports", len(res.reports)],
         ["sort latency (cycles)", layout.block_length],
         ["order == exact distance sort", order == expected]],
    )
    assert order == expected
    assert len(res.reports) == N
