"""Per-task dispatch overhead: pinned shm ring vs ``ProcessPoolExecutor``.

``bench_shm_transport.py`` showed where task *payload* time goes; this
benchmark isolates what PR 7 changes — the **per-task dispatch
machinery** between payload-ready and worker-starts-executing — and
checks that the pinned-worker ring actually kills it:

* **dispatch microbenchmark** — one warm worker on each side, one
  small real :class:`~repro.host.parallel.PartitionTask` submitted
  per round, sequentially so no measurement is polluted by queueing
  behind another task's execution.  Measured quantity is
  *submit-to-start* latency: parent stamps ``t_submit`` at the
  submission call, :func:`~repro.host.parallel.execute_partition`
  stamps ``t_start`` on entry in the worker (``time.monotonic`` is
  cross-process comparable on one host).

  - *executor path*: ``ProcessPoolExecutor.submit`` — work-queue hop,
    management-thread pickle, pipe write, worker-side unpickle;
  - *ring path*: :class:`~repro.host.ring.PinnedWorkerPool` — one
    descriptor memcpy into the shm submission ring plus an Event wake.

  Acceptance: the ring must beat the executor decisively (>= 2x in
  the full run), and the measured ratio is tracked against the
  committed baseline in ``check_regression.py``.  The ratio is
  floor-compressed on single-core hosts, where one kernel context
  switch (~50us+) dominates *both* paths' wake latency — the seed
  baseline box (1 core) measures ~3.5x with the ring at ~55-80us per
  task; on multi-core hosts the ring side collapses toward the memcpy
  (+wake) cost and the same measurement clears 5x and the 100us/task
  target with room to spare.  Both milestones (``ratio_5x``,
  ``ring_under_100us``) are recorded in the JSON.

* **engine dispatch accounting** — warm ``APSimilaritySearch``
  per backend (serial/thread/process/pinned) reporting the new
  ``KnnResult.dispatch_overhead_s``, all bit-identical to serial;

* **workload parity** — every registered workload through a pinned
  ``WorkloadSearch``, values identical to serial;

* **chunked stock dispatch** — the process backend with more tasks
  than workers submits one chunk per worker (``queue_depth ==
  n_workers``), results identical, dispatch accounting recorded.

Results land in ``BENCH_dispatch.json``.  Runs under pytest
(``--quick`` sizes, skipped when the platform lacks
``multiprocessing.shared_memory``) or standalone:
``python benchmarks/bench_dispatch_overhead.py [--quick]``.
"""

import json
import os
import statistics
import time


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _dataset(n, d, n_queries, seed=2017):
    import numpy as np

    rng = np.random.default_rng(seed)
    data = (rng.random((n, d)) < 0.4).astype(np.uint8)
    queries = (rng.random((n_queries, d)) < 0.4).astype(np.uint8)
    return data, queries


def _small_task(n=16, d=64, q=2):
    """A deliberately tiny partition task: dispatch cost dominates."""
    from repro.core.macros import collector_tree_depth
    from repro.host.parallel import PartitionTask

    data, queries = _dataset(n, d, q)
    task = PartitionTask(
        p_idx=0, start=0, end=n, dataset_bits=data, mode="functional",
        d=d, collector_depth=collector_tree_depth(d, n), max_fan_in=16,
        counter_max_increment=1, k=2,
    )
    return task, queries


def run_dispatch_microbench(rounds=40):
    """Submit-to-start latency per task, one warm worker on each side."""
    from concurrent.futures import ProcessPoolExecutor

    from repro.host.parallel import execute_partition
    from repro.host.ring import PinnedWorkerPool
    from repro.host.shm import shm_available

    task, queries = _small_task()
    out = {"rounds": rounds, "shm_supported": shm_available()}

    executor = ProcessPoolExecutor(max_workers=1)
    try:
        executor.submit(execute_partition, task, queries, None).result()
        latencies = []
        for _ in range(rounds):
            t_submit = time.monotonic()
            res = executor.submit(execute_partition, task, queries,
                                  None).result()
            latencies.append(res.t_start - t_submit)
    finally:
        executor.shutdown()
    out["executor_submit_to_start_us"] = statistics.median(latencies) * 1e6

    if not shm_available():
        return out

    with PinnedWorkerPool(1) as pool:
        pool.run_tasks([task], queries)  # warm: worker imports + compiles
        latencies = []
        for _ in range(rounds):
            report = pool.run_tasks([task], queries)
            latencies.append(report.dispatch_latencies_s[0])
    ring_us = statistics.median(latencies) * 1e6
    ratio = out["executor_submit_to_start_us"] / max(ring_us, 1e-9)
    out.update({
        "ring_submit_to_start_us": ring_us,
        "dispatch_ratio": ratio,
        "ratio_5x": ratio >= 5.0,
        "ring_under_100us": ring_us <= 100.0,
    })
    return out


def run_engine_dispatch(n, d, q, k, cap, n_workers, warm_rounds=2):
    """Warm engine searches per backend with dispatch accounting."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import ParallelConfig
    from repro.host.shm import shm_available

    data, queries = _dataset(n, d, q, seed=11)
    ref = APSimilaritySearch(
        data, k, board_capacity=cap, execution="functional"
    ).search(queries)

    backends = ["thread", "process"]
    if shm_available():
        backends.append("pinned")

    rows = [{
        "backend": "serial",
        "dispatch_us": None,
        "identical": True,
    }]
    for backend in backends:
        cfg = ParallelConfig(
            n_workers=n_workers, backend=backend, persistent=True
        )
        with cfg:
            eng = APSimilaritySearch(
                data, k, board_capacity=cap, execution="functional",
                parallel=cfg,
            )
            last = None
            for _ in range(warm_rounds + 1):
                last = eng.search(queries)
        dispatch = last.dispatch_overhead_s
        rows.append({
            "backend": backend,
            "dispatch_us": None if dispatch is None else dispatch * 1e6,
            "identical": bool(
                (last.indices == ref.indices).all()
                and (last.distances == ref.distances).all()
            ),
        })
    return rows


def run_workload_parity(n, d, q, cap, n_workers):
    """Every registered workload: pinned results identical to serial."""
    import numpy as np

    from repro.core.workload import WorkloadSearch, get_workload
    from repro.host.parallel import ParallelConfig
    from repro.host.shm import shm_available

    if not shm_available():
        return []

    data, queries = _dataset(n, d, q, seed=7)
    params_by_name = {"knn": {"k": 10}, "jaccard": {"k": 10},
                      "range": {"radius": 24}}
    rows = []
    for name, params in params_by_name.items():
        workload = get_workload(name)
        serial = WorkloadSearch(
            data, name, params, board_capacity=cap
        ).search(queries)
        cfg = ParallelConfig(n_workers=n_workers, backend="pinned")
        with cfg:
            pinned = WorkloadSearch(
                data, name, params, board_capacity=cap, parallel=cfg
            ).search(queries)
        identical = all(
            np.asarray(getattr(pinned.value, f)).shape
            == np.asarray(getattr(serial.value, f)).shape
            and (np.asarray(getattr(pinned.value, f))
                 == np.asarray(getattr(serial.value, f))).all()
            for f in workload.wire_fields
        )
        dispatch = pinned.dispatch_overhead_s
        rows.append({
            "workload": name,
            "identical": bool(identical),
            "dispatch_us": None if dispatch is None else dispatch * 1e6,
        })
    return rows


def run_chunking_check(n, d, q, k, cap, n_workers=2):
    """Stock process backend chunks tasks per worker, results identical."""
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import ParallelConfig, run_partitions

    data, queries = _dataset(n, d, q, seed=3)
    eng = APSimilaritySearch(data, k, board_capacity=cap,
                             execution="functional")
    tasks = eng._partition_tasks("functional")
    serial = run_partitions(tasks, queries, ParallelConfig()).results
    cfg = ParallelConfig(n_workers=n_workers, backend="process",
                         fallback_serial=False)
    with cfg:
        report = run_partitions(tasks, queries, cfg)
    identical = all(
        a.p_idx == b.p_idx and (a.q_idx == b.q_idx).all()
        and (a.codes == b.codes).all() and (a.cycles == b.cycles).all()
        for a, b in zip(report.results, serial)
    )
    return {
        "tasks": len(tasks),
        "n_workers": report.n_workers,
        "queue_depth": report.queue_depth,
        "chunked": report.queue_depth == report.n_workers,
        "identical": bool(identical),
        "dispatch_recorded": report.dispatch_overhead_s is not None,
    }


def run_all(quick=False):
    rounds = 20 if quick else 40
    micro = run_dispatch_microbench(rounds=rounds)
    if quick:
        engine = run_engine_dispatch(
            n=1 << 9, d=64, q=8, k=5, cap=64, n_workers=2, warm_rounds=1
        )
        parity = run_workload_parity(n=1 << 9, d=64, q=8, cap=64,
                                     n_workers=2)
        chunking = run_chunking_check(n=1 << 9, d=64, q=8, k=5, cap=64)
    else:
        engine = run_engine_dispatch(
            n=1 << 11, d=64, q=16, k=10, cap=128, n_workers=2
        )
        parity = run_workload_parity(n=1 << 11, d=64, q=16, cap=256,
                                     n_workers=2)
        chunking = run_chunking_check(n=1 << 11, d=64, q=16, k=10, cap=128)
    return {
        "dispatch": micro,
        "engine": engine,
        "workload_parity": parity,
        "chunking": chunking,
        "quick": quick,
        "cores": _available_cores(),
    }


# -- pytest harness -------------------------------------------------------


def test_dispatch_overhead_smoke(benchmark, report):
    import pytest

    from repro.host.shm import shm_available

    if not shm_available():
        pytest.skip("multiprocessing.shared_memory unsupported here")
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    micro = results["dispatch"]
    report(
        "Per-task dispatch overhead (quick sizes)",
        ["Path", "submit-to-start (us)"],
        [
            ["executor", f"{micro['executor_submit_to_start_us']:.1f}"],
            ["ring", f"{micro['ring_submit_to_start_us']:.1f}"],
        ],
    )
    assert micro["dispatch_ratio"] > 1.0
    assert all(r["identical"] for r in results["engine"])
    assert all(r["identical"] for r in results["workload_parity"])
    assert results["chunking"]["chunked"]
    assert results["chunking"]["identical"]


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_dispatch.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)
    micro = results["dispatch"]

    print("== dispatch microbench: submit-to-start per task ==")
    print(f"executor : {micro['executor_submit_to_start_us']:8.1f} us")
    if micro["shm_supported"]:
        print(f"ring     : {micro['ring_submit_to_start_us']:8.1f} us")
        print(f"# ratio {micro['dispatch_ratio']:.1f}x "
              f"(5x milestone: {micro['ratio_5x']}, "
              f"100us target: {micro['ring_under_100us']})")
    else:
        print("ring     : shm unsupported on this platform")

    print("== engine dispatch accounting (warm searches) ==")
    for r in results["engine"]:
        dispatch = ("     -" if r["dispatch_us"] is None
                    else f"{r['dispatch_us']:6.1f}")
        print(f"{r['backend']:>8}: dispatch {dispatch} us/task "
              f"identical={r['identical']}")
    for r in results["workload_parity"]:
        print(f"# workload {r['workload']}: pinned identical="
              f"{r['identical']}")
    chunk = results["chunking"]
    print(f"# chunking: {chunk['tasks']} tasks -> queue depth "
          f"{chunk['queue_depth']} over {chunk['n_workers']} workers")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    if not all(r["identical"] for r in results["engine"]):
        raise SystemExit("FAIL: a parallel backend diverged from serial")
    if not all(r["identical"] for r in results["workload_parity"]):
        raise SystemExit("FAIL: pinned workload results diverge from serial")
    if not (chunk["chunked"] and chunk["identical"]
            and chunk["dispatch_recorded"]):
        raise SystemExit("FAIL: chunked process dispatch broke an invariant")
    if micro["shm_supported"]:
        floor = 1.2 if args.quick else 2.0
        if micro["dispatch_ratio"] < floor:
            raise SystemExit(
                f"FAIL: ring dispatch only {micro['dispatch_ratio']:.1f}x "
                f"faster than the executor (>= {floor}x required)"
            )
    else:
        print("# shm unsupported: ring acceptance recorded as skipped")
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
