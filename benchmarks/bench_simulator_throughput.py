"""Ablation: cycle-accurate simulator throughput vs the functional model.

Not a paper table — this quantifies the reproduction's own engineering
trade-off (DESIGN.md): the vectorized sparse-matrix simulator pays
O(states) per cycle while the functional model pays O(n d / 64) per
query batch, which is why the engine auto-switches for large boards.
Also measures simulator scaling in board size (states x cycles / s).
"""

import numpy as np
import pytest

from repro.automata.simulator import CompiledSimulator
from repro.core.engine import APSimilaritySearch
from repro.core.functional import FunctionalKnnBoard
from repro.core.macros import build_knn_network
from repro.core.stream import StreamLayout, encode_query_batch


@pytest.mark.parametrize("n", [16, 64, 256])
def test_cycle_simulator_scaling(benchmark, report, n):
    d = 32
    rng = np.random.default_rng(61)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (2, d), dtype=np.uint8)
    net, handles = build_knn_network(data)
    layout = StreamLayout(d, handles[0].collector_depth)
    sim = CompiledSimulator(net)
    stream = encode_query_batch(queries, layout)

    res = benchmark(sim.run, stream)

    report(
        f"Cycle simulator scaling: n={n} vectors, d={d}",
        ["States", "Cycles", "Reports"],
        [[sim.n_elements, res.n_cycles, len(res.reports)]],
    )
    assert len(res.reports) == 2 * n


def test_functional_model_throughput(benchmark):
    rng = np.random.default_rng(62)
    data = rng.integers(0, 2, (4096, 128), dtype=np.uint8)
    queries = rng.integers(0, 2, (64, 128), dtype=np.uint8)
    board = FunctionalKnnBoard(data, StreamLayout(128, 1))
    q_idx, codes, cycles = benchmark(board.query_reports, queries)
    assert codes.shape[0] == 64 * 4096


def test_engine_auto_mode_picks_wisely(benchmark, report):
    rng = np.random.default_rng(63)
    small = rng.integers(0, 2, (32, 16), dtype=np.uint8)
    large = rng.integers(0, 2, (8192, 128), dtype=np.uint8)
    q_small = rng.integers(0, 2, (4, 16), dtype=np.uint8)
    eng_small = APSimilaritySearch(small, k=2, board_capacity=32)
    eng_large = APSimilaritySearch(large, k=2, board_capacity=1024)
    res = benchmark.pedantic(eng_small.search, args=(q_small,), rounds=1,
                             iterations=1)
    report(
        "Engine execution-mode auto-selection",
        ["Board", "States x cycles", "Chosen mode"],
        [["32 x d16", "~", res.execution],
         ["8192 x d128", "~", eng_large._choose_execution()]],
    )
    assert res.execution == "simulate"
    assert eng_large._choose_execution() == "functional"
