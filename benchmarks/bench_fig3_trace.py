"""E1 — Fig. 3: cycle-by-cycle execution of one combined macro.

Benchmarks the cycle-accurate simulation of the exact Fig. 3 instance
(vector {1,0,1,1}, query {1,0,0,1}) and prints the counter's internal
value per time step next to the figure's labels, plus the pulse/report
timing the caption calls out (counter at t = 8, report at t = 9).
"""

import numpy as np
from repro.automata.simulator import CompiledSimulator
from repro.core.macros import build_knn_network
from repro.core.stream import StreamLayout, encode_query

FIG3_COUNTS = [0, 0, 0, 1, 2, 2, 3, 4, 5, 6, 7, 8]


def run_trace():
    net, handles = build_knn_network(np.array([[1, 0, 1, 1]], dtype=np.uint8))
    layout = StreamLayout(4, handles[0].collector_depth)
    sim = CompiledSimulator(net)
    stream = encode_query(np.array([1, 0, 0, 1], dtype=np.uint8), layout)
    res = sim.run(stream, record_trace=True)
    return sim, handles[0], res


def test_fig3_trace(benchmark, report):
    sim, h, res = benchmark(run_trace)
    counts = res.counter_trace[:, sim._counter_pos(h.counter)].tolist()
    rows = [
        [f"t={t+1}", counts[t], FIG3_COUNTS[t],
         "counter pulse" if t == 7 else ("REPORT" if t == 8 else "")]
        for t in range(12)
    ]
    report(
        "Fig. 3 trace: counter value per time step (model vs figure)",
        ["Step", "Model count", "Figure count", "Event"],
        rows,
    )
    assert counts == FIG3_COUNTS
    assert res.activations_of(h.counter).tolist() == [7]  # figure t = 8
    assert [(r.code, r.cycle) for r in res.reports] == [(0, 8)]  # t = 9
