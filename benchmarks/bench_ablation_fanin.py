"""Ablation — collector-tree fan-in (DESIGN.md design choice).

Section III-A: "For larger dimensional vectors we implement the
collector states as a reduction tree of '*' states to limit the maximum
state fan in and improve routability."  This ablation sweeps the
fan-in bound and quantifies the trade it controls: lower fan-in means
more collector STEs and a deeper tree (longer query blocks, since the
sort phase must start after the deepest collector path), while higher
fan-in pressures the routing matrix.
"""

import numpy as np
import pytest

from repro.ap.compiler import APCompiler
from repro.core.macros import MacroConfig, build_knn_network, collector_tree_depth, macro_ste_cost
from repro.core.stream import StreamLayout

D = 256  # TagSpace dimensionality: the deepest trees


@pytest.mark.parametrize("fan_in", [2, 4, 8, 16])
def test_fanin_sweep(benchmark, report, fan_in):
    config = MacroConfig(max_fan_in=fan_in)

    def build():
        net, handles = build_knn_network(
            np.zeros((1, D), dtype=np.uint8), config=config
        )
        return net, handles[0]

    net, h = benchmark(build)
    depth = collector_tree_depth(D, fan_in)
    layout = StreamLayout(D, depth)
    compile_report = APCompiler().compile(net)
    report(
        f"Collector fan-in ablation (d={D}, fan-in={fan_in})",
        ["Fan-in", "Tree depth", "STEs/macro", "Block length (cycles)",
         "Max fan-in seen", "Blocks/macro"],
        [[fan_in, depth, macro_ste_cost(D, fan_in), layout.block_length,
          net.stats().max_fan_in, f"{compile_report.blocks_used:.2f}"]],
    )
    assert h.collector_depth == depth
    # the bound governs STE activation fan-in (counters aggregate ports)
    max_ste_fan_in = max(
        len(net.in_edges(s.name)) for s in net.stes()
    )
    assert max_ste_fan_in <= max(fan_in, 2)
    # monotone trade: smaller fan-in never shortens the block
    assert layout.block_length >= StreamLayout(D, collector_tree_depth(D, 16)).block_length


def test_fanin_functional_invariance(benchmark, report):
    """Fan-in is purely structural: reports must encode the same
    distances at every setting (offsets shift by the depth delta)."""
    from repro.automata.simulator import CompiledSimulator
    from repro.core.stream import decode_report_offset, encode_query

    rng = np.random.default_rng(71)
    d = 32
    data = rng.integers(0, 2, (6, d), dtype=np.uint8)
    q = rng.integers(0, 2, d, dtype=np.uint8)
    truth = np.abs(data.astype(int) - q.astype(int)).sum(axis=1)

    def run_all():
        out = {}
        for fan_in in (2, 4, 16):
            config = MacroConfig(max_fan_in=fan_in)
            net, hs = build_knn_network(data, config=config)
            lay = StreamLayout(d, hs[0].collector_depth)
            res = CompiledSimulator(net).run(encode_query(q, lay))
            out[fan_in] = {
                r.code: decode_report_offset(r.cycle, lay)[2] for r in res.reports
            }
        return out

    out = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [[f"fan-in={fi}",
             all(out[fi][v] == truth[v] for v in range(6))] for fi in out]
    report(
        "Fan-in invariance: decoded distances match brute force",
        ["Setting", "All distances exact"],
        rows,
    )
    for fi, decoded in out.items():
        for v in range(6):
            assert decoded[v] == truth[v], (fi, v)
