"""Observability-plane gates: zero-hot-path overhead + determinism.

The metrics registry's design contract is **attach-only**: with the
registry disabled every instrumented site costs a handful of attribute
loads and integer compares, and with it enabled the cost is a few
locked float adds per *batch* (never per row).  This benchmark freezes
that contract into CI:

* **overhead** — registry mutations per functional hot-path search
  (read off a reset registry, so per-row instrumentation creep is
  caught exactly) times the measured per-mutation cost, gated at <2%
  of the search floor; a paired enabled/disabled wall-clock A/B rides
  along as evidence.
* **determinism** — two identical serial runs (registry reset between
  them) must produce byte-identical ``counter_values()`` maps, and the
  registry must never change results (bit-identity across the
  enabled/disabled runs).
* **trace** — a ``trace_request`` around a search captures the
  execute/merge stage spans, and the stage histogram aggregates them.

Results land in ``BENCH_observability.json`` for
``check_regression.py``.  Runs under pytest-benchmark like the other
benchmarks, or standalone:
``python benchmarks/bench_observability.py [--quick] [--out PATH]``.
"""

import json
import time

import numpy as np


def _workload(n, d, n_queries, seed=2017):
    rng = np.random.default_rng(seed)
    data = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (n_queries, d), dtype=np.uint8)
    return data, queries


def _best_of(fn, repeats):
    best = float("inf")
    out = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - t0)
    return best, out


def run_overhead(n, q, k, cap, repeats, rounds=4):
    """The <2% overhead gate on the functional hot path.

    Differencing two wall clocks cannot resolve 2% on a shared runner
    (machine-speed drift alone swings paired A/B ratios by ±10% at
    quick sizes), so the *gated* number is constructed from three
    robust measurements instead:

    1. ``ops_per_search`` — how many registry mutations one enabled
       search actually performs, read off a reset registry's snapshot
       (deterministic: counter sums + histogram observation counts);
    2. ``cost_per_op`` — the per-mutation cost, timed over a tight
       loop of the hottest real site (labeled histogram observe),
       where a best-of-N minimum IS stable;
    3. ``t_search`` — the disabled-arm search floor (best-of-N).

    ``overhead_fraction = ops * cost / t_search`` gates at 2%.  This
    catches exactly the regression that matters — instrumentation
    creeping onto a per-row/per-report path multiplies ``ops`` by 1e3+
    and blows the bound — without flaking on runner noise.  The raw
    A/B wall-clock ratio (order-swapped blocks, median of locally
    paired rounds) ships in the JSON as supporting evidence.
    """
    import timeit

    from repro import APSimilaritySearch
    from repro.perf import metrics

    data, queries = _workload(n, 64, q)
    engine = APSimilaritySearch(
        data, k=k, board_capacity=cap, execution="functional"
    )
    engine.search(queries[:1])  # warm compile caches off the clock

    reg = metrics.get_registry()
    was_enabled = reg.enabled
    t_disabled = float("inf")
    t_enabled = float("inf")
    ratios = []
    res_disabled = res_enabled = None
    try:
        # -- wall-clock A/B (informational) --
        for r in range(rounds):
            order = (False, True) if r % 2 == 0 else (True, False)
            t_round = {}
            for enabled in order:
                reg.set_enabled(enabled)
                t, res = _best_of(lambda: engine.search(queries), repeats)
                t_round[enabled] = t
                if enabled:
                    t_enabled, res_enabled = min(t_enabled, t), res
                else:
                    t_disabled, res_disabled = min(t_disabled, t), res
            ratios.append(t_round[True] / max(t_round[False], 1e-12))

        # -- ops per search: what one enabled search mutates --
        reg.set_enabled(True)
        reg.reset()
        engine.search(queries)
        ops = 0
        for m in reg.snapshot().metrics:
            for s in m["series"]:
                if m["type"] == "histogram":
                    # Observation counts are exact mutation counts —
                    # per-row timing (the realistic creep hazard, e.g.
                    # observe_many over n latencies) is caught exactly.
                    ops += s["count"]
                else:
                    # Counters/gauges mutate once per batch by design
                    # (inc(rows), set(depth)); a nonzero series counts
                    # as one mutation per search.
                    ops += 1 if s["value"] else 0
        ops = max(ops, 1)

        # -- per-op cost: the hottest real site in a tight loop --
        child = metrics.stage_histogram(reg).labels(stage="execute")
        loop = 10000
        cost_on = min(
            timeit.timeit(lambda: child.observe(1e-3), number=loop)
            for _ in range(3)
        ) / loop
        reg.set_enabled(False)
        cost_off = min(
            timeit.timeit(lambda: child.observe(1e-3), number=loop)
            for _ in range(3)
        ) / loop
    finally:
        reg.set_enabled(was_enabled)
    wall_ratio = sorted(ratios)[len(ratios) // 2]
    overhead_fraction = ops * cost_on / max(t_disabled, 1e-12)
    identical = bool(
        (res_enabled.indices == res_disabled.indices).all()
        and (res_enabled.distances == res_disabled.distances).all()
    )
    return {
        "n": n, "q": q, "k": k, "cap": cap,
        "repeats": repeats * rounds,
        "t_disabled_s": t_disabled,
        "t_enabled_s": t_enabled,
        "wall_ratio_median": wall_ratio,
        "round_ratios": ratios,
        "ops_per_search": ops,
        "cost_per_op_enabled_s": cost_on,
        "cost_per_op_disabled_s": cost_off,
        "overhead_fraction": overhead_fraction,
        "overhead_ratio": 1.0 + overhead_fraction,
        "overhead_ok": bool(overhead_fraction < 0.02),
        "identical": identical,
    }


def run_determinism(n, q, k, cap):
    """Two identical serial runs -> identical counter/gauge values."""
    from repro import APSimilaritySearch
    from repro.perf import metrics

    data, queries = _workload(n, 64, q)
    reg = metrics.get_registry()
    was_enabled = reg.enabled
    reg.set_enabled(True)
    values = []
    try:
        for _ in range(2):
            reg.reset()
            # cache=True so the board-image cache's hit/miss counters
            # flow on the sequential path too.
            engine = APSimilaritySearch(
                data, k=k, board_capacity=cap, execution="functional",
                cache=True,
            )
            engine.search(queries)
            values.append(reg.snapshot().counter_values())
    finally:
        reg.set_enabled(was_enabled)
    nonzero = sum(1 for v in values[0].values() if v)
    return {
        "series_compared": len(values[0]),
        "nonzero_series": nonzero,
        "identical_counters": values[0] == values[1],
        # A determinism pass over an all-zero registry proves nothing.
        "counters_flowed": bool(nonzero > 0),
    }


def run_trace(n, q, k, cap):
    """trace_request captures execute/merge spans; histogram aggregates."""
    from repro import APSimilaritySearch
    from repro.perf import metrics

    data, queries = _workload(n, 64, q)
    reg = metrics.get_registry()
    was_enabled = reg.enabled
    reg.set_enabled(True)
    try:
        reg.reset()
        engine = APSimilaritySearch(
            data, k=k, board_capacity=cap, execution="functional"
        )
        with metrics.trace_request("bench-search") as trace:
            engine.search(queries)
        stages = [s.stage for s in trace.spans]
        snap = reg.snapshot()
        hist = snap.get("repro_stage_duration_seconds", stage="execute")
    finally:
        reg.set_enabled(was_enabled)
    return {
        "stages": stages,
        "spans_captured": bool(
            "execute" in stages and "merge" in stages
        ),
        "histogram_fed": bool(hist is not None and hist["count"] >= 1),
    }


def run_all(quick=False):
    if quick:
        # Big enough that the ~5ms search dwarfs timer noise: the 2%
        # gate needs a stable floor even on shared CI runners.
        over = run_overhead(n=1 << 13, q=32, k=10, cap=1024, repeats=3)
        det = run_determinism(n=1 << 10, q=16, k=10, cap=512)
        trc = run_trace(n=1 << 10, q=8, k=10, cap=512)
    else:
        over = run_overhead(n=1 << 15, q=64, k=10, cap=2048, repeats=3)
        det = run_determinism(n=1 << 12, q=32, k=10, cap=1024)
        trc = run_trace(n=1 << 12, q=16, k=10, cap=1024)
    return {
        "overhead": over,
        "determinism": det,
        "trace": trc,
        "quick": quick,
    }


# -- pytest harness -------------------------------------------------------


def test_observability_gates(benchmark, report):
    results = benchmark.pedantic(
        lambda: run_all(quick=True), rounds=1, iterations=1
    )
    over = results["overhead"]
    det = results["determinism"]
    report(
        "Observability plane: overhead + determinism (quick sizes)",
        ["n", "Ops/search", "Cost/op (us)", "Overhead %", "Identical",
         "Deterministic"],
        [[over["n"], over["ops_per_search"],
          f"{over['cost_per_op_enabled_s'] * 1e6:.2f}",
          f"{over['overhead_fraction'] * 100:.3f}",
          over["identical"], det["identical_counters"]]],
    )
    assert over["identical"]
    assert det["identical_counters"] and det["counters_flowed"]
    assert results["trace"]["spans_captured"]
    assert results["trace"]["histogram_fed"]


# -- standalone entry point -----------------------------------------------


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small workload for CI smoke runs")
    parser.add_argument("--out", default="BENCH_observability.json",
                        help="write results to this JSON file")
    args = parser.parse_args(argv)

    results = run_all(quick=args.quick)

    over = results["overhead"]
    print("== registry overhead on the functional hot path ==")
    print(f"  n={over['n']} q={over['q']} repeats={over['repeats']}: "
          f"search {over['t_disabled_s'] * 1e3:.2f}ms, "
          f"{over['ops_per_search']} mutation(s)/search x "
          f"{over['cost_per_op_enabled_s'] * 1e6:.2f}us "
          f"(disabled {over['cost_per_op_disabled_s'] * 1e9:.0f}ns) "
          f"= {over['overhead_fraction'] * 100:.3f}% overhead "
          f"(gate < 2%: {'ok' if over['overhead_ok'] else 'FAIL'}); "
          f"wall-clock A/B median {over['wall_ratio_median']:.4f}, "
          f"bit-identical={over['identical']}")
    det = results["determinism"]
    print("== counter determinism across two serial runs ==")
    print(f"  {det['series_compared']} series "
          f"({det['nonzero_series']} nonzero): "
          f"identical={det['identical_counters']}")
    trc = results["trace"]
    print("== per-request trace spans ==")
    print(f"  stages={trc['stages']} histogram_fed={trc['histogram_fed']}")

    with open(args.out, "w") as f:
        json.dump(results, f, indent=2)
    print(f"# results written to {args.out}")

    ok = (
        over["identical"]
        and det["identical_counters"]
        and det["counters_flowed"]
        and trc["spans_captured"]
        and trc["histogram_fed"]
    )
    if not ok:
        raise SystemExit("FAIL: observability invariants violated")
    if not over["overhead_ok"]:
        raise SystemExit(
            f"FAIL: enabled-registry overhead "
            f"{over['overhead_fraction'] * 100:.2f}% >= 2% gate "
            f"({over['ops_per_search']} mutations/search — did "
            f"instrumentation land on a per-row path?)"
        )
    print("ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
