"""Ablation — the in-fabric index the paper rejected (Section III-D).

The paper argues index traversal belongs on the host because an
automata-expressed index makes "a vast majority of the traversals
unnecessary": every vector still burns fabric cycles computing its
distance, and the index NFAs cost STEs, while only report traffic is
pruned.  This benchmark runs our bit-prefix-trie gated design and puts
numbers on exactly that trade.
"""

import numpy as np
from repro.core.index_automata import IndexGatedSearch
from repro.core.macros import macro_ste_cost
from repro.workloads.generators import clustered_binary


def build_and_search():
    data, _ = clustered_binary(512, 32, n_clusters=16, flip_prob=0.06, seed=201)
    queries = data[np.random.default_rng(202).integers(0, 512, size=64)]
    ig = IndexGatedSearch(data, prefix_bits=4)
    idx, dist, stats = ig.search(queries, k=4)
    return ig, stats


def test_index_gated_tradeoff(benchmark, report):
    ig, stats = benchmark.pedantic(build_and_search, rounds=1, iterations=1)
    base_stes = 512 * macro_ste_cost(32)
    overhead = ig.ste_overhead()
    report(
        "In-fabric trie index (prefix=4 bits, n=512, d=32, 64 queries)",
        ["Quantity", "Value", "The paper's point"],
        [["report reduction", f"{stats['report_reduction']:.1f}x",
          "only reports are pruned"],
         ["distance computations", stats["distance_computations"],
          "zero compute saved on-fabric"],
         ["index STE overhead", f"{overhead} (+{overhead / base_stes:.1%})",
          "index NFAs cost board area"],
         ["buckets materialized", stats["n_buckets"],
          "one path automaton each"]],
    )
    assert stats["report_reduction"] > 2
    assert stats["distance_computations"] == stats["reports_unpruned"]
    assert overhead > 0
