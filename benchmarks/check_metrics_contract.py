"""CI metrics-contract gate: the registry schema is a public API.

Dashboards, alerts, and the learned control plane consume metric
*names*, *types*, and *label sets* — renaming ``repro_router_wait_seconds``
or dropping the ``stage`` label breaks them as surely as an RPC schema
change breaks a client.  This gate makes such changes fail the PR:

* a **smoke run** exercises every instrumented layer in-process
  (sequential cached search with a trace, a thread-parallel run, the
  batch router, a loopback ShardServer + RemoteShard round trip, a
  ReplicaGroup, and — where shared memory works — a pinned-worker
  ring) so each metric family registers;
* the live ``MetricsSnapshot.schema()`` is validated against the
  committed ``benchmarks/baselines/metrics_schema.json`` with
  :func:`repro.perf.metrics.validate_schema`: a missing/renamed
  metric, a type change, or a label-set change fails (exit 1).
  *Additions* pass — the contract protects existing consumers.

Intentional changes re-baseline the same way perf changes do::

    python benchmarks/check_metrics_contract.py --update

then commit the refreshed ``metrics_schema.json`` alongside the rename
that justified it.  ``--dump PATH`` writes the full snapshot JSON (CI
uploads it as an artifact so a red run shows exactly what the process
exported).
"""

import argparse
import json
import sys
from pathlib import Path

import numpy as np

BASELINE = Path(__file__).parent / "baselines" / "metrics_schema.json"


def smoke_run(include_ring=True):
    """Exercise every instrumented layer so all families register.

    Returns the set of name prefixes that could NOT be exercised on
    this platform (the validator skips baseline entries under them).
    """
    from repro.core.engine import APSimilaritySearch
    from repro.host.parallel import ParallelConfig
    from repro.host.replication import ReplicaGroup
    from repro.host.rpc import ShardServer
    from repro.perf import metrics

    skipped_prefixes: set[str] = set()
    rng = np.random.default_rng(2017)
    data = rng.integers(0, 2, (2048, 64), dtype=np.uint8)
    queries = rng.integers(0, 2, (8, 64), dtype=np.uint8)

    reg = metrics.get_registry()
    reg.set_enabled(True)

    # 1. Sequential cached search under a trace: cache + stage metrics.
    engine = APSimilaritySearch(
        data, k=5, board_capacity=512, execution="functional", cache=True
    )
    with metrics.trace_request("contract-smoke"):
        engine.search(queries)

    # 2. Thread-parallel run: dispatch latency/queue-depth/payload.
    APSimilaritySearch(
        data, k=5, board_capacity=512, execution="functional",
        parallel=ParallelConfig(n_workers=2, backend="thread"),
    ).search(queries)

    # 3. Batch router: families register at construction.
    router = engine.batched(max_batch=8, max_wait_ms=1.0)
    with router:
        router.search(queries[0])

    # 4. Loopback server + client + replica group: rpc/server/replica
    #    families (ReplicaGroup wraps a RemoteShard internally).
    server = ShardServer(data, execution="functional").start()
    try:
        address = "{}:{}".format(*server.address)
        with ReplicaGroup(address, retries=0) as group:
            group.search(queries, k=5)
    finally:
        server.close()

    # 5. Pinned-worker ring: families register at pool construction.
    if include_ring:
        from repro.host.shm import SHM_UNAVAILABLE_REASON

        if SHM_UNAVAILABLE_REASON is None:
            from repro.host.ring import PinnedWorkerPool

            PinnedWorkerPool(n_workers=1).shutdown()
        else:
            print(f"# shared memory unavailable "
                  f"({SHM_UNAVAILABLE_REASON}): skipping ring metrics",
                  file=sys.stderr)
            skipped_prefixes.add("repro_ring_")
    else:
        skipped_prefixes.add("repro_ring_")
    return skipped_prefixes


def main(argv=None) -> int:
    from repro.perf import metrics

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default=BASELINE, type=Path,
                        help="committed schema contract")
    parser.add_argument("--update", action="store_true",
                        help="write the live schema over the baseline "
                             "(intentional change: commit the result)")
    parser.add_argument("--dump", type=Path, default=None,
                        help="also write the full snapshot JSON here "
                             "(CI artifact)")
    parser.add_argument("--no-ring", action="store_true",
                        help="skip the pinned-worker ring smoke (its "
                             "baseline entries are then not enforced)")
    args = parser.parse_args(argv)

    skipped = smoke_run(include_ring=not args.no_ring)
    snap = metrics.get_registry().snapshot()
    schema = snap.schema()

    if args.dump is not None:
        args.dump.write_text(snap.to_json(indent=2))
        print(f"# snapshot dumped to {args.dump}")

    if args.update:
        args.baseline.parent.mkdir(parents=True, exist_ok=True)
        args.baseline.write_text(json.dumps(schema, indent=2) + "\n")
        print(f"re-baselined {args.baseline} ({len(schema)} metrics)")
        return 0

    if not args.baseline.exists():
        print(f"missing baseline {args.baseline} — run with --update and "
              f"commit the result", file=sys.stderr)
        return 1
    baseline = json.loads(args.baseline.read_text())
    enforced = [
        m for m in baseline
        if not any(m["name"].startswith(p) for p in skipped)
    ]
    problems = metrics.validate_schema(schema, enforced)
    for p in problems:
        print(f"  [FAIL] {p}")
    if problems:
        print(f"\nmetrics contract: {len(problems)} violation(s) against "
              f"{args.baseline}", file=sys.stderr)
        print("if this change is intentional, re-baseline: "
              "`python benchmarks/check_metrics_contract.py --update` "
              "and commit the refreshed schema", file=sys.stderr)
        return 1
    extra = len(schema) - len(enforced)
    print(f"metrics contract: {len(enforced)} metrics match "
          f"{args.baseline.name}"
          + (f" (+{extra} new, allowed)" if extra > 0 else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
