#!/usr/bin/env python
"""Index-accelerated AP search (Section III-D / Table V scenario).

The host traverses a spatial index (hierarchical k-means here) and only
ships the selected buckets to the AP — one bucket per board
configuration, queries batched per bucket.  On Gen 1 hardware the 45 ms
reconfigurations eat the pruning gains; Gen 2's ~100x faster reloads
turn the same flow into a large win (Table V).

Run:  python examples/index_accelerated_search.py
"""

from repro.ap.device import GEN1, GEN2
from repro.baselines import CPUHammingKnn
from repro.index import HierarchicalKMeans, IndexedAPSearch, indexed_runtime_model
from repro.perf.models import CORTEX_MODEL
from repro.workloads import TAGSPACE, clustered_binary, queries_near_dataset


def main() -> None:
    n, d, k = 8192, TAGSPACE.d, TAGSPACE.k
    data, _ = clustered_binary(n, d, n_clusters=48, flip_prob=0.06, seed=9)
    queries = queries_near_dataset(data, 2048, flip_prob=0.04, seed=10)

    index = HierarchicalKMeans(data, branching=8, bucket_size=512, seed=11)
    print(f"dataset: {n} x {d} bits; index: {len(index.buckets)} buckets "
          f"(bucket = one board configuration)")

    searcher = IndexedAPSearch(index)
    idx, dist, stats = searcher.search(queries, k)
    print(f"queries: {stats.n_queries}; bucket visits: {stats.bucket_visits}; "
          f"distinct buckets loaded: {stats.distinct_buckets_loaded}")

    # recall vs exact search
    exact = CPUHammingKnn(data).search(queries, k)
    hits = sum(
        len(set(idx[i].tolist()) & set(exact.indices[i].tolist()))
        for i in range(len(queries))
    )
    print(f"recall@{k}: {hits / exact.indices.size:.1%} while scanning "
          f"{stats.candidates_scanned / (len(queries) * n):.1%} of the data")

    print("\nTable V-style run-time model (single-threaded ARM host):")
    for name, device in [("ARM + AP Gen 1", GEN1), ("ARM + AP Gen 2", GEN2)]:
        m = indexed_runtime_model(stats, d, device, CORTEX_MODEL)
        print(f"  {name:15s}: AP {m['ap_s'] * 1e3:8.1f} ms  "
              f"CPU {m['cpu_s'] * 1e3:8.1f} ms  speedup {m['speedup']:6.2f}x")
    print("  (Gen 1 is reconfiguration-bound; Gen 2 exposes the pruning win)")


if __name__ == "__main__":
    main()
