#!/usr/bin/env python
"""Write a custom workload and ride the whole host stack for free.

Defines ``overlap`` — top-k by *shared set bits* (the Jaccard
numerator alone): one :class:`repro.core.workload.Workload` subclass,
one ``register_workload`` call, and the workload gains

1. the generic engine (``WorkloadSearch``) with board partitioning,
2. thread-parallel partition fan-out (``parallel=``), bit-identical,
3. the batching/admission layer (``.batched()``), and
4. a two-shard RPC rack (``RemoteWorkloadSearch``), bit-identical,

without touching any of those layers.  The shard servers here run
in-process (``ShardServer.start()`` threads) so the example's own
registry is visible to them; a real deployment imports the module
defining the workload on the server side too — the wire carries only
the registered *name*.

Run:  PYTHONPATH=src python examples/custom_workload.py
"""

from dataclasses import dataclass

import numpy as np

from repro.ap.runtime import RuntimeCounters
from repro.core.workload import (
    Workload,
    WorkloadSearch,
    available_workloads,
    register_workload,
)
from repro.host.rpc import RemoteWorkloadSearch, serve_shard
from repro.util.bitops import pack_bits, popcount_u64

PAD = -1


@dataclass
class OverlapResult:
    indices: np.ndarray   # (n_q, k) int64, PAD-padded
    overlaps: np.ndarray  # (n_q, k) int64, PAD on pad slots


class OverlapTopkWorkload(Workload):
    """Top-k by |query AND vector| — descending overlap, ties by index."""

    name = "overlap"
    description = "top-k by shared set bits (intersection count)"
    wire_fields = ("indices", "overlaps")
    result_type = OverlapResult

    def validate_params(self, params, n, d):
        k = int(params.get("k", 10))
        if k < 1:
            raise ValueError("k must be >= 1")
        return {"k": min(k, n)}

    def compile(self, dataset_bits, params):
        # Picklable + position-independent: just the packed slice.
        return pack_bits(np.asarray(dataset_bits, dtype=np.uint8))

    def execute(self, artifact, queries_bits, params):
        qp = pack_bits(np.asarray(queries_bits, dtype=np.uint8))
        inter = popcount_u64(qp[:, None, :] & artifact[None, :, :]).sum(-1)
        n = inter.shape[1]
        k = min(int(params["k"]), n)
        ids = np.broadcast_to(np.arange(n, dtype=np.int64), inter.shape)
        order = np.lexsort((ids, -inter), axis=-1)[:, :k]
        partial = OverlapResult(
            indices=np.take_along_axis(ids, order, axis=1),
            overlaps=np.take_along_axis(inter, order, axis=1),
        )
        counters = RuntimeCounters()
        counters.configurations += 1
        counters.reports_received += inter.size
        return partial, counters

    def merge(self, partials, offsets, params):
        k = int(params["k"])
        idx_parts, ov_parts = [], []
        for bi, p in enumerate(partials):
            idx = np.asarray(p.indices, dtype=np.int64)
            if offsets is not None:
                # Re-base valid indices only: pads must never be offset.
                idx = np.where(idx != PAD, idx + int(offsets[bi]), PAD)
            idx_parts.append(idx)
            ov_parts.append(np.asarray(p.overlaps, dtype=np.int64))
        indices = np.concatenate(idx_parts, axis=1)
        overlaps = np.concatenate(ov_parts, axis=1)
        # (descending overlap, ascending index); pads (overlap -1) last.
        order = np.lexsort((indices, -overlaps), axis=-1)
        n_q, m = indices.shape
        k_out = min(k, m) if m else k
        order = order[:, :k_out]
        out = OverlapResult(
            indices=np.take_along_axis(indices, order, axis=1),
            overlaps=np.take_along_axis(overlaps, order, axis=1),
        )
        if k_out < k:  # fewer candidates than k: pad out to width k
            pad = self.empty(n_q, {"k": k})
            pad.indices[:, :k_out] = out.indices
            pad.overlaps[:, :k_out] = out.overlaps
            out = pad
        return out

    def empty(self, n_q, params):
        k = int(params["k"])
        return OverlapResult(
            np.full((n_q, k), PAD, dtype=np.int64),
            np.full((n_q, k), PAD, dtype=np.int64),
        )


def main():
    register_workload(OverlapTopkWorkload())
    print(f"registered workloads: {', '.join(available_workloads())}\n")

    rng = np.random.default_rng(7)
    data = (rng.random((3000, 64)) < 0.4).astype(np.uint8)
    queries = (rng.random((12, 64)) < 0.4).astype(np.uint8)
    params = {"k": 5}

    # 1+2: generic engine, serial vs thread-parallel — bit-identical
    serial = WorkloadSearch(data, "overlap", params, board_capacity=256)
    ref = serial.search(queries)
    par = WorkloadSearch(data, "overlap", params, board_capacity=256,
                         parallel=4, cache=True)
    got = par.search(queries)
    assert (got.value.indices == ref.value.indices).all()
    assert (got.value.overlaps == ref.value.overlaps).all()
    print(f"parallel == serial across {got.n_partitions} partitions "
          f"({got.n_workers} workers): OK")

    # 3: the admission layer composes unchanged
    with serial.batched(max_batch=8, max_wait_ms=0.0) as router:
        one = router.search(queries[3])
    assert (one.result.value.indices[0] == ref.value.indices[3]).all()
    print("batched single-query row == direct batch row 3: OK")

    # 4: a two-shard rack, in-process servers, same registry
    servers = [serve_shard(data, i, 2, board_capacity=256).start()
               for i in range(2)]
    addresses = [f"{h}:{p}" for h, p in (s.address for s in servers)]
    try:
        with RemoteWorkloadSearch(addresses, "overlap", params) as rack:
            remote = rack.search(queries)
        assert not remote.partial
        assert (remote.value.indices == ref.value.indices).all()
        assert (remote.value.overlaps == ref.value.overlaps).all()
        print(f"2-shard rack ({remote.transport}) == local engine: OK")
    finally:
        for s in servers:
            s.close()

    q0 = ref.value
    print(f"\nquery 0 top-{params['k']}: " + ", ".join(
        f"#{i} ({o} shared bits)"
        for i, o in zip(q0.indices[0], q0.overlaps[0])
    ))


if __name__ == "__main__":
    main()
