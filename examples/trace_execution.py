#!/usr/bin/env python
"""Replay the paper's Fig. 3 execution trace, cycle by cycle.

Prints an ASCII timeline of the combined Hamming + sorting macro
encoding vector {1,0,1,1} against query {1,0,0,1}: which elements are
active at every step, the counter's internal value, the threshold pulse
at t = 8, and the report at t = 9.

Run:  python examples/trace_execution.py
"""

import numpy as np

from repro.automata.anml import to_anml
from repro.automata.simulator import CompiledSimulator
from repro.core.macros import build_knn_network
from repro.core.stream import StreamLayout, decode_report_offset, encode_query

VECTOR = np.array([1, 0, 1, 1], dtype=np.uint8)
QUERY = np.array([1, 0, 0, 1], dtype=np.uint8)
SYMBOL_NAMES = {0xFE: "SOF", 0xFF: "EOF", 0xFD: "^EOF", 0: "0", 1: "1"}


def main() -> None:
    net, handles = build_knn_network(VECTOR[None, :])
    h = handles[0]
    layout = StreamLayout(4, h.collector_depth)
    sim = CompiledSimulator(net)
    stream = encode_query(QUERY, layout)
    res = sim.run(stream, record_trace=True)

    print(f"vector = {VECTOR.tolist()}, query = {QUERY.tolist()}, "
          f"stream = {layout.block_length} symbols\n")

    watch = (
        [("guard", h.guard)]
        + [(f"match{i}", m) for i, m in enumerate(h.matches)]
        + [("collector", h.collectors[0][0]), ("sort", h.sort_state),
           ("eof", h.eof_state), ("counter", h.counter),
           ("report", h.report_state)]
    )
    col = {name: res.element_order.index(el) for name, el in watch}
    ctr = sim._counter_pos(h.counter)

    header = "t    sym   count  " + " ".join(f"{n:>9s}" for n, _ in watch)
    print(header)
    print("-" * len(header))
    for t in range(res.n_cycles):
        sym = SYMBOL_NAMES.get(int(stream[t]), hex(stream[t]))
        marks = " ".join(
            f"{'*' if res.activation_trace[t, col[n]] else '.':>9s}"
            for n, _ in watch
        )
        print(f"t={t+1:<3d} {sym:>4s}  {res.counter_trace[t, ctr]:>5d}  {marks}")

    r = res.reports[0]
    _, m, dist = decode_report_offset(r.cycle, layout)
    print(f"\nreport: code={r.code} at t={r.cycle + 1} "
          f"-> inverted Hamming distance {m}, Hamming distance {dist}")

    print("\nANML for this macro (first 20 lines):")
    print("\n".join(to_anml(net).splitlines()[:20]))


if __name__ == "__main__":
    main()
