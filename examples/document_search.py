#!/usr/bin/env python
"""Document similarity search with report-bandwidth reduction.

The paper's kNN-WordEmbed scenario (document retrieval via word-embedding
codes) plus the Section VI-C statistical activation reduction: partition
the vector NFAs into groups of p = 16 with a Local Neighbor Counter so
each group reports only its nearest distance cohorts, cutting PCIe report
traffic by ~p/k' while keeping results almost always exact (Table VI).

Run:  python examples/document_search.py
"""

import numpy as np

from repro.automata.simulator import CompiledSimulator
from repro.baselines import CPUHammingKnn
from repro.core.macros import build_knn_network
from repro.core.reduction import ReductionModel, build_reduced_network
from repro.core.stream import StreamLayout, decode_report_offset, encode_query
from repro.util.topk import merge_topk
from repro.workloads import WORDEMBED, clustered_binary, queries_near_dataset


def main() -> None:
    d, k = 24, WORDEMBED.k  # scaled-down d so the cycle sim stays quick
    n, p, k_prime = 128, 16, 3
    docs, _ = clustered_binary(n, d, n_clusters=8, flip_prob=0.08, seed=3)
    query = queries_near_dataset(docs, 1, flip_prob=0.05, seed=4)

    layout = StreamLayout(d, 1)
    stream = encode_query(query[0], layout)

    # Full design: every document NFA reports every query.
    full_net, _ = build_knn_network(docs)
    full = CompiledSimulator(full_net).run(stream)

    # Reduced design: Fig. 7 LNC groups (p=16, k'=3).
    red_net, _ = build_reduced_network(docs, k_prime=k_prime, group_size=p)
    red = CompiledSimulator(red_net).run(stream)

    print(f"documents={n}, d={d}, k={k}, groups of p={p}, k'={k_prime}")
    print(f"reports without reduction : {len(full.reports)}")
    print(f"reports with reduction    : {len(red.reports)} "
          f"({len(full.reports) / len(red.reports):.1f}x fewer)")

    # Decode the surviving reports into the global top-k on the host.
    partials = []
    for r in red.reports:
        _, _, dist = decode_report_offset(r.cycle, layout)
        partials.append((np.array([r.code]), np.array([dist])))
    idx, dist = merge_topk(partials, k)

    exact = CPUHammingKnn(docs).search(query, k)
    agree = sorted(dist.tolist()) == sorted(exact.distances[0].tolist())
    print(f"top-{k}: {list(zip(idx.tolist(), dist.tolist()))}")
    print(f"distance-exact vs full kNN: {agree}")

    # How often does this configuration fail? (Table VI methodology)
    model = ReductionModel(d=d, k=k, k_prime=k_prime, p=p, n=n)
    frac = model.incorrect_fraction(runs=50, seed=5)
    print(f"Monte-Carlo incorrect-result rate (50 runs): {frac:.0%}")


if __name__ == "__main__":
    main()
