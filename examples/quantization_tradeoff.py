#!/usr/bin/env python
"""Code length vs retrieval accuracy vs AP resources.

Section II-A: quantizing real features to Hamming codes loses "some
information" but well-crafted codes are "a viable alternative" — and on
the AP, code length directly sets the resource bill (≈ 2d STEs per
encoded vector) and the query latency (O(d) cycles).  This example
sweeps ITQ code lengths and prints all three axes of the trade.

Run:  python examples/quantization_tradeoff.py
"""

from repro.ap.compiler import APCompiler
from repro.core.macros import build_knn_network, macro_ste_cost
from repro.index.evaluation import code_length_sweep
from repro.workloads import gaussian_features

import numpy as np


def main() -> None:
    rng = np.random.default_rng(55)
    X, _ = gaussian_features(1500, 128, n_clusters=24, cluster_std=0.18, seed=1)
    picks = rng.integers(0, 1500, size=48)
    queries = X[picks] + 0.05 * rng.standard_normal((48, 128))

    print("ITQ code length sweep (ground truth: exact Euclidean 10-NN)\n")
    header = (f"{'bits':>5} {'recall@10':>10} {'recall@1':>9} "
              f"{'dist ratio':>11} {'STEs/vec':>9} {'vecs/board':>11} "
              f"{'latency (cyc)':>14}")
    print(header)
    print("-" * len(header))
    for acc in code_length_sweep(X, queries, bit_lengths=(16, 32, 64, 128),
                                 k=10, seed=2):
        d = acc.n_bits
        stes = macro_ste_cost(d)
        template, _ = build_knn_network(np.zeros((1, d), dtype=np.uint8))
        capacity = APCompiler().max_instances(template)
        print(f"{d:>5} {acc.recall_at_k:>10.2f} {acc.recall_at_1:>9.2f} "
              f"{acc.mean_distance_ratio:>11.3f} {stes:>9} {capacity:>11} "
              f"{2 * d + 4:>14}")

    print("\nreading the table: longer codes buy accuracy linearly in board")
    print("area and query latency; 64-128 bits already retrieve the true")
    print("nearest neighbor almost always (the paper's Table II regime).")


if __name__ == "__main__":
    main()
