#!/usr/bin/env python
"""Classic AP usage: many regex patterns scanned in parallel.

Before similarity search, the AP's flagship applications were pattern
mining — biological motif search, network signatures (paper Section I,
VIII).  This example compiles a panel of PCRE motifs onto one board
with :func:`repro.automata.regex.compile_regex`, runs them against a
synthetic DNA stream in a single pass, shrinks the board with the
prefix-merging optimizer, and shows the compiled footprint.

Run:  python examples/pattern_matching.py
"""

import numpy as np

from repro.ap.compiler import APCompiler
from repro.ap.visualize import summarize
from repro.automata.network import AutomataNetwork
from repro.automata.optimize import optimize
from repro.automata.regex import compile_regex
from repro.automata.simulator import CompiledSimulator

MOTIFS = {
    1: "TATA[AT]A",          # TATA box
    2: "GAATTC",             # EcoRI site
    3: "GG(A|T)CC",          # Avall-like
    4: "CG{2,4}A",           # CpG-ish run
    5: "ATG(A|C|G|T){3,6}TAA",  # tiny ORF
}


def main() -> None:
    rng = np.random.default_rng(123)
    genome = "".join(rng.choice(list("ACGT"), size=4000))
    # plant a few known sites so something definitely fires
    genome = genome[:500] + "TATAAA" + genome[500:1500] + "GAATTC" + genome[1500:]

    board = AutomataNetwork("motif-panel")
    for code, pattern in MOTIFS.items():
        compile_regex(pattern, report_code=code, prefix=f"m{code}_", network=board)
    print(summarize(board))

    sim = CompiledSimulator(board)
    res = sim.run(genome.encode())
    by_motif: dict[int, int] = {}
    for r in res.reports:
        by_motif[r.code] = by_motif.get(r.code, 0) + 1
    print(f"\nscanned {len(genome)} bases in one stream pass "
          f"({len(res.reports)} total match reports):")
    for code, pattern in MOTIFS.items():
        print(f"  motif {code} ({pattern}): {by_motif.get(code, 0)} sites")

    # verify against Python's re (overlapping-match semantics)
    import re as pyre

    for code, pattern in MOTIFS.items():
        ends = set()
        rx = pyre.compile(pattern)
        for i in range(len(genome)):
            m = rx.match(genome, i)
            while m:
                ends.add(i + len(m.group()) - 1)
                # also shorter alternatives ending earlier
                break
        # exact cross-check done in the test suite; here just sanity
    got = {r.cycle for r in res.reports if r.code == 2}
    exp = {m.end() - 1 for m in pyre.finditer("GAATTC", genome)}
    assert exp <= got
    print("\nEcoRI sites cross-checked against Python re")

    opt, stats = optimize(board)
    report_before = APCompiler().compile(board)
    report_after = APCompiler().compile(opt)
    print(f"\nprefix-merge optimizer: {stats.stes_before} -> "
          f"{stats.stes_after} STEs ({stats.ste_savings:.2f}x), "
          f"board area {report_before.blocks_used:.2f} -> "
          f"{report_after.blocks_used:.2f} blocks")
    res2 = CompiledSimulator(opt).run(genome.encode())
    assert sorted((r.cycle, r.code) for r in res2.reports) == sorted(
        (r.cycle, r.code) for r in res.reports
    )
    print("optimized board produces identical reports")


if __name__ == "__main__":
    main()
