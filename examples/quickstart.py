#!/usr/bin/env python
"""Quickstart: kNN similarity search on the simulated Automata Processor.

Builds a small binary dataset, runs the paper's automata design through
the cycle-accurate simulator, and checks the answers against a plain
CPU linear scan.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import APSimilaritySearch
from repro.baselines import CPUHammingKnn
from repro.perf.models import ap_gen1_model, ap_gen2_model


def main() -> None:
    rng = np.random.default_rng(0)
    n, d, k = 200, 32, 5
    dataset = rng.integers(0, 2, (n, d), dtype=np.uint8)
    queries = rng.integers(0, 2, (8, d), dtype=np.uint8)

    # One board configuration holds 64 vectors here, so the engine
    # partitions the dataset and "reconfigures" between partitions,
    # exactly like Section III-C's partial reconfiguration flow.
    engine = APSimilaritySearch(dataset, k=k, board_capacity=64)
    result = engine.search(queries)

    print(f"execution mode : {result.execution}")
    print(f"partitions     : {result.n_partitions}")
    print(f"board loads    : {result.counters.configurations}")
    print(f"symbols        : {result.counters.symbols_streamed}")
    print(f"reports        : {result.counters.reports_received}")
    print()
    for qi in range(3):
        pairs = ", ".join(
            f"#{i} (dist {dist})"
            for i, dist in zip(result.indices[qi], result.distances[qi])
        )
        print(f"query {qi}: {pairs}")

    # The AP's temporally-encoded sort gives exact kNN: cross-check.
    cpu = CPUHammingKnn(dataset).search(queries, k)
    assert (cpu.indices == result.indices).all()
    assert (cpu.distances == result.distances).all()
    print("\ncross-check vs CPU linear scan: identical results")

    # What would this take on real AP hardware? (paper's timing model)
    for name, model in [("AP Gen 1", ap_gen1_model()), ("AP Gen 2", ap_gen2_model())]:
        t = model.runtime_s(n, len(queries), d, engine.board_capacity)
        print(f"{name} estimated device time: {t * 1e6:.1f} us")


if __name__ == "__main__":
    main()
