#!/usr/bin/env python
"""Demonstrate the Section VII architectural extensions.

1. Counter-increment extension: 7 query dimensions per symbol; the
   counter accepts parallel increments, shrinking the Hamming phase
   from d to ceil(d/7) cycles (1.75x query-latency model).
2. Dynamic counter thresholds: the Fig. 8 "if (A > B)" macro.
3. STE decomposition: Table VII resource-savings model.

Run:  python examples/extensions_demo.py
"""

import numpy as np

from repro.automata.network import AutomataNetwork
from repro.automata.simulator import simulate
from repro.ap.extensions import (
    build_comparison_macro,
    build_counter_increment_macro,
    counter_increment_speedup,
    dimension_packed_stream,
    ste_decomposition_table,
)


def demo_counter_increment() -> None:
    print("=== VII-A: counter increment extension ===")
    rng = np.random.default_rng(2)
    d = 28
    vector = rng.integers(0, 2, d, dtype=np.uint8)
    query = rng.integers(0, 2, d, dtype=np.uint8)
    true_dist = int((vector != query).sum())

    net = AutomataNetwork("ci")
    h = build_counter_increment_macro(net, vector, 0, "x_", dims_per_symbol=7)
    stream = dimension_packed_stream(query, 7)
    res = simulate(net, stream)
    m = (h["n_groups"] + 1 + d + 1) - res.reports[0].cycle + 0  # invert offset
    # offset = n_groups + 1 + (d - m) + 1  =>  m = n_groups + d + 2 - offset
    m = h["n_groups"] + d + 2 - res.reports[0].cycle
    print(f"d={d}: Hamming phase {h['hamming_cycles']} symbols instead of {d}")
    print(f"decoded distance {d - m} (true {true_dist})")
    print(f"query-latency gain: {counter_increment_speedup(7):.2f}x\n")
    assert d - m == true_dist


def demo_comparison() -> None:
    print("=== VII-B: dynamic-threshold comparison (Fig. 8) ===")
    net = AutomataNetwork("cmp")
    build_comparison_macro(net, "c_", 1, ord("a"), ord("b"), ord("?"))
    for a, b in [(5, 2), (2, 5), (3, 3)]:
        stream = b"a" * a + b"b" * b + b"?" + b"xx"
        fired = bool(simulate(net, stream).reports)
        print(f"A={a}, B={b}: macro fired={fired}  (A > B is {a > b})")
    print()


def demo_decomposition() -> None:
    print("=== VII-C: STE decomposition savings (Table VII) ===")
    table = ste_decomposition_table()
    factors = (1, 2, 4, 8, 16, 32)
    print("dim   " + "".join(f"x={x:<7d}" for x in factors))
    for d, row in table.items():
        print(f"{d:<6d}" + "".join(f"{row[x]:<9.2f}" for x in factors))


if __name__ == "__main__":
    demo_counter_increment()
    demo_comparison()
    demo_decomposition()
