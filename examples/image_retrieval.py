#!/usr/bin/env python
"""Content-based image retrieval on the AP (the paper's kNN-SIFT scenario).

The paper's end-to-end pipeline (Sections I, II-A):

1. extract real-valued feature descriptors from images (here: synthetic
   SIFT-like clustered features, since we have no image corpus);
2. quantize offline to binary codes with ITQ — off the kNN critical path;
3. encode the code database into Hamming-macro NFAs on the AP;
4. stream each query's code; the temporal sort returns the k nearest
   images in O(d) cycles, independent of database size.

Run:  python examples/image_retrieval.py
"""

import numpy as np

from repro import APSimilaritySearch
from repro.baselines import CPUHammingKnn
from repro.index import ITQQuantizer
from repro.perf.models import ap_gen1_model
from repro.workloads import SIFT, gaussian_features


def main() -> None:
    rng = np.random.default_rng(7)
    n_images, raw_dim = 2000, 256
    d, k = SIFT.d, SIFT.k  # Table II: 128 bits, 4 neighbors

    print(f"database: {n_images} images, {raw_dim}-dim descriptors "
          f"-> {d}-bit ITQ codes, k={k}")

    # 1-2: features + offline quantization
    features, labels = gaussian_features(
        n_images, raw_dim, n_clusters=20, cluster_std=0.2, seed=1
    )
    itq = ITQQuantizer(n_bits=d, n_iterations=30).fit(features)
    codes = itq.transform(features)

    # queries: noisy views of database images (e.g. re-photographed)
    picks = rng.integers(0, n_images, size=32)
    noisy = features[picks] + 0.1 * rng.standard_normal((32, raw_dim))
    query_codes = itq.transform(noisy)

    # 3-4: AP search (functional model of the cycle-accurate design)
    engine = APSimilaritySearch(codes, k=k, board_capacity=SIFT.board_capacity)
    result = engine.search(query_codes)

    hits = sum(picks[i] in result.indices[i] for i in range(32))
    same_cluster = sum(
        labels[result.indices[i][0]] == labels[picks[i]] for i in range(32)
    )
    print(f"source image retrieved in top-{k}: {hits}/32")
    print(f"top-1 from the correct visual cluster: {same_cluster}/32")

    cpu = CPUHammingKnn(codes).search(query_codes, k)
    assert (cpu.indices == result.indices).all(), "AP must equal exact kNN"
    print("AP result == exact kNN on the quantized codes")

    # paper-model device time for the full 4096-query batch
    t = ap_gen1_model().runtime_for(SIFT, n_images, 4096)
    print(f"AP Gen 1 device-time estimate for 4096 queries: {t * 1e3:.2f} ms "
          f"({result.n_partitions} board configuration(s))")


if __name__ == "__main__":
    main()
