#!/usr/bin/env python
"""Near-duplicate detection with Jaccard threshold filtering.

Deduplication is one of the paper's motivating applications
(Section I, citing Aronovich et al.).  Documents are shingled into
binary feature-set indicators; the AP's Jaccard threshold filter
(Section II-C) reports only candidates whose intersection with the
query reaches tau — a near-data pre-filter that slashes both the
candidate set and the report bandwidth — and the host verifies exact
Jaccard on the survivors.

Run:  python examples/near_duplicate_detection.py
"""

import numpy as np

from repro.core.jaccard import (
    JaccardThresholdFilter,
    jaccard_similarity_matrix,
)

UNIVERSE = 96  # shingle-hash universe size (d)


def make_corpus(rng, n_docs=400, n_dupes=25):
    """Random set indicators plus planted near-duplicates."""
    base = (rng.random((n_docs, UNIVERSE)) < 0.25).astype(np.uint8)
    dup_src = rng.integers(0, n_docs, size=n_dupes)
    dupes = base[dup_src].copy()
    flips = rng.random(dupes.shape) < 0.03  # light edits
    dupes = np.where(flips, 1 - dupes, dupes).astype(np.uint8)
    corpus = np.vstack([base, dupes])
    return corpus, dup_src


def main() -> None:
    rng = np.random.default_rng(77)
    corpus, dup_src = make_corpus(rng)
    n_docs = corpus.shape[0]
    queries = corpus[-25:]  # the edited copies look for their originals
    expected = dup_src  # each should find its source document

    tau = 18  # intersection threshold: |A ∩ B| >= tau to report
    filt = JaccardThresholdFilter(corpus, tau=tau)
    candidates = filt.candidates(queries)
    reduction = filt.reduction_factor(queries)
    print(f"corpus: {n_docs} documents over a {UNIVERSE}-shingle universe")
    print(f"threshold tau={tau}: mean candidates/query = "
          f"{np.mean([c.size for c in candidates]):.1f} "
          f"({reduction:.1f}x report reduction vs full scan)")

    # Host-side exact verification on the survivors only.
    found = 0
    for qi, cand in enumerate(candidates):
        if cand.size == 0:
            continue
        # the best match is the (identical-ish) query itself or its
        # source; measure the strongest *other* candidate instead
        others = cand[(cand != n_docs - 25 + qi)]
        if others.size:
            sims_o = jaccard_similarity_matrix(
                queries[qi : qi + 1], corpus[others]
            )[0]
            top = others[np.argmax(sims_o)]
            if top == expected[qi]:
                found += 1
    print(f"originals recovered for {found}/25 near-duplicates")

    # tau trade-off sweep
    print("\ntau  candidates/query  reduction")
    for t in (10, 14, 18, 22, 26):
        f = JaccardThresholdFilter(corpus, tau=t)
        c = np.mean([x.size for x in f.candidates(queries)])
        r = f.reduction_factor(queries)
        print(f"{t:3d}  {c:17.1f}  {r:8.1f}x")


if __name__ == "__main__":
    main()
